#include "util/hungarian.h"

#include <limits>
#include <stdexcept>

namespace strg {

std::vector<int> SolveAssignment(
    const std::vector<std::vector<double>>& cost) {
  const size_t n_rows = cost.size();
  if (n_rows == 0) return {};
  const size_t n_cols = cost[0].size();
  for (const auto& row : cost) {
    if (row.size() != n_cols) {
      throw std::invalid_argument("SolveAssignment: ragged cost matrix");
    }
  }

  // Work on a square matrix of side n = max(rows, cols); padding entries are
  // zero-cost so they never distort the optimal assignment of real cells.
  const size_t n = std::max(n_rows, n_cols);
  const double kInf = std::numeric_limits<double>::infinity();
  auto at = [&](size_t i, size_t j) -> double {
    return (i < n_rows && j < n_cols) ? cost[i][j] : 0.0;
  };

  // Classic potentials-based Hungarian algorithm, 1-indexed internals.
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<size_t> p(n + 1, 0), way(n + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<char> used(n + 1, false);
    do {
      used[j0] = true;
      size_t i0 = p[j0], j1 = 0;
      double delta = kInf;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        double cur = at(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> match(n_rows, -1);
  for (size_t j = 1; j <= n; ++j) {
    if (p[j] != 0 && p[j] - 1 < n_rows && j - 1 < n_cols) {
      match[p[j] - 1] = static_cast<int>(j - 1);
    }
  }
  return match;
}

}  // namespace strg
