#ifndef STRG_UTIL_HUNGARIAN_H_
#define STRG_UTIL_HUNGARIAN_H_

#include <cstddef>
#include <vector>

namespace strg {

/// Solves the rectangular assignment problem (minimum total cost).
///
/// `cost[i][j]` is the cost of assigning row i to column j. Returns, for each
/// row, the column it is matched to, or -1 if the row is unmatched (possible
/// only when there are more rows than columns). Runs the O(n^3) Hungarian
/// algorithm (Jonker-style shortest augmenting paths).
///
/// Used by the clustering-error-rate metric (Eq. 11 in the paper): predicted
/// cluster labels must be matched to ground-truth labels before counting
/// "correctly clustered" OGs, and the optimal matching is an assignment
/// problem.
std::vector<int> SolveAssignment(const std::vector<std::vector<double>>& cost);

}  // namespace strg

#endif  // STRG_UTIL_HUNGARIAN_H_
