#ifndef STRG_UTIL_ORDERED_STAGE_H_
#define STRG_UTIL_ORDERED_STAGE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <utility>

#include "util/thread_pool.h"

namespace strg {

/// Bounded fan-out with a deterministic in-order merge.
///
/// Producers run concurrently on a ThreadPool; results are handed to a
/// single `sink` strictly in submission order, on the thread that calls
/// Submit()/Drain(). This is the building block for pipeline stages whose
/// downstream consumer is order-dependent (the STRG tracking step consumes
/// per-frame RAGs exactly as a serial loop would): parallelism changes the
/// schedule, never the merge order, so the output is bit-identical to the
/// serial path.
///
/// `capacity` bounds in-flight results (submitted, not yet consumed). A
/// full stage consumes its oldest result — blocking on it if necessary —
/// before accepting more work; `stalls()` counts those waits, which the
/// ingest metrics surface as queue-full backpressure.
///
/// Single-owner object: all methods must be called from one thread (the
/// pool workers only run the producer closures). That is why this class
/// deliberately holds no strg::Mutex and carries no STRG_GUARDED_BY
/// annotations: the cross-thread handoff happens entirely inside
/// std::future (Submit publishes, ConsumeFront's .get() acquires), so any
/// lock here would be pure overhead guarding single-threaded state. The
/// static-analysis layer proves the locking of everything *around* this
/// class (ThreadPool's queue, the serving engines) instead.
template <typename T>
class OrderedStage {
 public:
  OrderedStage(ThreadPool* pool, size_t capacity,
               std::function<void(T&&)> sink)
      : pool_(pool),
        capacity_(capacity > 0 ? capacity : 1),
        sink_(std::move(sink)) {}

  /// Waits for still-running producers (without consuming them) so their
  /// closures never outlive state owned by the caller.
  ~OrderedStage() {
    for (auto& f : pending_) {
      if (f.valid()) f.wait();
    }
  }

  OrderedStage(const OrderedStage&) = delete;
  OrderedStage& operator=(const OrderedStage&) = delete;

  /// Schedules `produce()` on the pool. First consumes every already-ready
  /// result at the queue head (keeping the merge incremental), then, if the
  /// stage is at capacity, blocks consuming the oldest in-flight result.
  template <typename F>
  void Submit(F&& produce) {
    ConsumeReady();
    while (pending_.size() >= capacity_) {
      ++stalls_;
      ConsumeFront();
    }
    pending_.push_back(pool_->Submit(std::forward<F>(produce)));
  }

  /// Consumes every outstanding result, in order, blocking as needed.
  void Drain() {
    while (!pending_.empty()) ConsumeFront();
  }

  uint64_t stalls() const { return stalls_; }
  size_t in_flight() const { return pending_.size(); }

 private:
  void ConsumeFront() {
    T value = pending_.front().get();
    pending_.pop_front();
    sink_(std::move(value));
  }

  void ConsumeReady() {
    while (!pending_.empty() &&
           pending_.front().wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready) {
      ConsumeFront();
    }
  }

  ThreadPool* pool_;
  size_t capacity_;
  std::function<void(T&&)> sink_;
  std::deque<std::future<T>> pending_;
  uint64_t stalls_ = 0;
};

}  // namespace strg

#endif  // STRG_UTIL_ORDERED_STAGE_H_
