#include "util/random.h"

#include <stdexcept>

namespace strg {

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  if (k > n) {
    throw std::invalid_argument("Rng::SampleIndices: k > n");
  }
  // Floyd's algorithm: O(k) expected draws, no O(n) scratch.
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = Index(j + 1);
    bool seen = false;
    for (size_t s : out) {
      if (s == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  return out;
}

}  // namespace strg
