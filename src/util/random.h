#ifndef STRG_UTIL_RANDOM_H_
#define STRG_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace strg {

/// Deterministic pseudo-random source used throughout the library.
///
/// Every experiment in the paper reproduction is seeded explicitly so that
/// tests and benchmarks are bit-for-bit repeatable across runs. The class
/// wraps a Mersenne Twister and exposes the handful of draw shapes the
/// library needs (uniform ints/reals, Gaussians, shuffles, subset sampling).
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int UniformInt(int lo, int hi) {
    std::uniform_int_distribution<int> d(lo, hi);
    return d(engine_);
  }

  /// Uniform size_t in [0, n) — handy for indexing.
  size_t Index(size_t n) {
    std::uniform_int_distribution<size_t> d(0, n - 1);
    return d(engine_);
  }

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Index(i)]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (k <= n).
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Derive an independent child generator; used to give each worker /
  /// experiment repetition its own stream.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace strg

#endif  // STRG_UTIL_RANDOM_H_
