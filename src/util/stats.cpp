#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace strg {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  size_t n = xs.size();
  if (n % 2 == 1) return xs[n / 2];
  return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

PrecisionRecall ComputePrecisionRecall(size_t relevant_retrieved,
                                       size_t total_retrieved,
                                       size_t total_relevant) {
  PrecisionRecall pr;
  if (total_retrieved > 0) {
    pr.precision = static_cast<double>(relevant_retrieved) /
                   static_cast<double>(total_retrieved);
  }
  if (total_relevant > 0) {
    pr.recall = static_cast<double>(relevant_retrieved) /
                static_cast<double>(total_relevant);
  }
  return pr;
}

}  // namespace strg
