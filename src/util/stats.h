#ifndef STRG_UTIL_STATS_H_
#define STRG_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace strg {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& xs);

/// Population standard deviation; 0 for fewer than two samples.
double StdDev(const std::vector<double>& xs);

/// Median (averages the two central elements for even sizes).
double Median(std::vector<double> xs);

/// Precision / recall pair for a retrieval result.
struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
};

/// Computes precision and recall given the number of relevant items
/// retrieved, the total retrieved, and the total relevant in the database.
PrecisionRecall ComputePrecisionRecall(size_t relevant_retrieved,
                                       size_t total_retrieved,
                                       size_t total_relevant);

}  // namespace strg

#endif  // STRG_UTIL_STATS_H_
