#ifndef STRG_UTIL_SYNC_H_
#define STRG_UTIL_SYNC_H_

#include <condition_variable>  // NOLINT(strg-naked-mutex): this is the one sanctioned wrapper site
#include <mutex>               // NOLINT(strg-naked-mutex): this is the one sanctioned wrapper site
#include <shared_mutex>        // NOLINT(strg-naked-mutex): this is the one sanctioned wrapper site

#if defined(STRG_DEADLOCK_CHECK) && STRG_DEADLOCK_CHECK
#define STRG_DEADLOCK_CHECK_ENABLED 1
#include <cstdio>   // abort diagnostics only; compiled out in release
#include <cstdlib>
#else
#define STRG_DEADLOCK_CHECK_ENABLED 0
#endif

namespace strg {

/// Annotated synchronization layer.
///
/// Every mutex in the tree goes through these wrappers so Clang's
/// -Wthread-safety analysis can prove the lock discipline at compile time:
/// a field tagged STRG_GUARDED_BY(mu) cannot be touched without holding
/// `mu`, a method tagged STRG_REQUIRES(mu) cannot be called unlocked, and a
/// Mutex cannot be acquired twice on one path — each violation is a build
/// error under STRG_STATIC_ANALYSIS=ON, not a production race. On non-Clang
/// compilers every attribute expands to nothing and the wrappers compile
/// down to the std primitives they hold, so the annotated build is the same
/// binary GCC always produced (scripts/strg_lint.py enforces that no naked
/// std::mutex / std::condition_variable appears outside this header).
///
/// Conventions (see DESIGN.md §9 for the full guide):
///  - guarded fields:      `int x_ STRG_GUARDED_BY(mu_);`
///  - guarded pointees:    `T* p_ STRG_PT_GUARDED_BY(mu_);`
///  - private helpers that assume the lock: `void FooLocked() STRG_REQUIRES(mu_);`
///  - public entry points that take the lock: `void Foo() STRG_EXCLUDES(mu_);`
///  - deliberate opt-outs: `STRG_NO_THREAD_SAFETY_ANALYSIS` with a one-line
///    justification comment — bare opt-outs are rejected in review.

#if defined(__clang__) && (!defined(SWIG))
#define STRG_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define STRG_THREAD_ANNOTATION__(x)  // no-op: GCC/MSVC have no capability analysis
#endif

/// Tags a type as a lockable capability (the analysis tracks instances).
#define STRG_CAPABILITY(x) STRG_THREAD_ANNOTATION__(capability(x))
/// Tags an RAII type whose constructor acquires and destructor releases.
#define STRG_SCOPED_CAPABILITY STRG_THREAD_ANNOTATION__(scoped_lockable)
/// Field may only be read/written while holding `x`.
#define STRG_GUARDED_BY(x) STRG_THREAD_ANNOTATION__(guarded_by(x))
/// Pointee (not the pointer) may only be dereferenced while holding `x`.
#define STRG_PT_GUARDED_BY(x) STRG_THREAD_ANNOTATION__(pt_guarded_by(x))
/// Function body assumes the listed capabilities are already held.
#define STRG_REQUIRES(...) \
  STRG_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define STRG_REQUIRES_SHARED(...) \
  STRG_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
/// Function acquires / releases the listed capabilities.
#define STRG_ACQUIRE(...) \
  STRG_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define STRG_ACQUIRE_SHARED(...) \
  STRG_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define STRG_RELEASE(...) \
  STRG_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define STRG_RELEASE_SHARED(...) \
  STRG_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
/// Function must NOT be called with the listed capabilities held
/// (deadlock-by-reentry prevention for public entry points).
#define STRG_EXCLUDES(...) STRG_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
/// Try-acquire: `b` is the return value that means "acquired".
#define STRG_TRY_ACQUIRE(...) \
  STRG_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
/// Function returns a reference to the capability guarding its result.
#define STRG_RETURN_CAPABILITY(x) STRG_THREAD_ANNOTATION__(lock_returned(x))
/// Deliberate opt-out; always pair with a one-line justification comment.
#define STRG_NO_THREAD_SAFETY_ANALYSIS \
  STRG_THREAD_ANNOTATION__(no_thread_safety_analysis)
/// Documentation-only marker: the function is lock-free by design (it reads
/// relaxed atomics or immutable state) and intentionally holds no mutex.
/// Expands to nothing under every compiler; it exists so the *absence* of a
/// lock is visibly a decision, not an omission.
#define STRG_LOCK_FREE
/// Documentation-only sibling of STRG_EXCLUDES for a capability the
/// attribute grammar cannot name statically — one shard's mutex selected at
/// runtime (BufferCache::Shard::mu, ShardedResultCache::Shard::mu). The
/// argument is the capability *family* being excluded. Expands to nothing;
/// scripts/strg_lint.py's strg-lock-excludes rule accepts it wherever
/// STRG_EXCLUDES would be required.
#define STRG_EXCLUDES_DYNAMIC(...)

/// Repo-wide lock hierarchy, outermost first: a thread may only acquire a
/// mutex whose rank is STRICTLY GREATER than every rank it already holds.
/// The table *is* the deadlock-freedom argument — any two threads taking
/// any subset of these locks take them in one global order, so no cycle of
/// waits can close. Enforced three ways:
///   - runtime: under STRG_DEADLOCK_CHECK=ON every acquisition is checked
///     against a thread-local held-rank stack and an inversion aborts with
///     both rank names (zero-cost no-ops when the option is OFF);
///   - statically: scripts/lock_graph.py extracts the acquisition graph
///     (declared in docs/lock_graph.json, AST-verified via libclang when
///     available), fails on cycles and on edges contradicting these ranks;
///   - by review: a new mutex MUST pick a rank here, which forces the "what
///     can I be held under?" question at design time.
///
/// Gaps of 100 leave room to slot new locks between existing levels without
/// renumbering. kUnranked (tests, examples, scratch locks) is exempt from
/// checking: it neither pushes a rank nor constrains later acquisitions.
///
/// The deepest legal chains today (see DESIGN.md §15 for the full graph):
///   write:  kIngestSharded -> kShardMap
///           kIngestSharded/kIngestDurable -> kEngineWriter
///             -> kRecordStore -> kBufferCache, -> kSnapshot, -> kThreadPool
///   query:  kGatherMerge / kResultCache / kRequestState / kSnapshot
///           (taken one at a time along a leg; kRecordStore -> kBufferCache
///           under a paged read)
enum class LockRank : int {
  kUnranked = 0,        ///< exempt: test/example/scratch locks
  kIngestSharded = 100, ///< ShardedQueryEngine::ingest_mu_ (global write order)
  kIngestDurable = 200, ///< DurableQueryEngine::ingest_mu_ (WAL+publish window)
  kShardMap = 300,      ///< ShardedQueryEngine::map_mu_ (local->global ids)
  kEngineWriter = 400,  ///< QueryEngine::writer_mu_ (clone-mutate-publish)
  kGatherMerge = 500,   ///< ShardedQueryEngine::Gather::merge_mu
  kResultCache = 600,   ///< ShardedResultCache::Shard::mu
  kRequestState = 700,  ///< RequestState::mu (completion rendezvous)
  kRecordStore = 800,   ///< PagedRecordStore::mu_ (append/commit tail)
  kBufferCache = 900,   ///< BufferCache::Shard::mu (frame pin/evict)
  kSnapshot = 1000,     ///< SnapshotHolder::mu_ (epoch pointer; leaf)
  kThreadPool = 1100,   ///< ThreadPool::mutex_ (task queue)
  kPoolError = 1200,    ///< ThreadPool::ParallelFor error_mutex
  kPoolDone = 1300,     ///< ThreadPool::ParallelFor done_mutex
  kAsyncRuntime = 1400, ///< AsyncRuntime::mu_ (submission queue; leaf)
};

/// Stable name for diagnostics (abort messages, lock_graph.py dot labels).
constexpr const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked: return "kUnranked";
    case LockRank::kIngestSharded: return "kIngestSharded";
    case LockRank::kIngestDurable: return "kIngestDurable";
    case LockRank::kShardMap: return "kShardMap";
    case LockRank::kEngineWriter: return "kEngineWriter";
    case LockRank::kGatherMerge: return "kGatherMerge";
    case LockRank::kResultCache: return "kResultCache";
    case LockRank::kRequestState: return "kRequestState";
    case LockRank::kRecordStore: return "kRecordStore";
    case LockRank::kBufferCache: return "kBufferCache";
    case LockRank::kSnapshot: return "kSnapshot";
    case LockRank::kThreadPool: return "kThreadPool";
    case LockRank::kPoolError: return "kPoolError";
    case LockRank::kPoolDone: return "kPoolDone";
    case LockRank::kAsyncRuntime: return "kAsyncRuntime";
  }
  return "unknown";
}

#if STRG_DEADLOCK_CHECK_ENABLED
namespace sync_internal {

/// Per-thread stack of held ranks. Fixed-size POD storage: the checker must
/// never allocate (it runs inside every Lock()) and never re-enter itself.
/// 64 simultaneously held ranked locks is far beyond any legal chain (the
/// deepest today is 5); overflowing it is itself a discipline violation.
struct HeldRanks {
  static constexpr int kMaxDepth = 64;
  int depth = 0;
  LockRank ranks[kMaxDepth] = {};
};

inline HeldRanks& TlsHeldRanks() {
  thread_local HeldRanks held;
  return held;
}

/// Checks the would-be acquisition against the hierarchy and records it.
/// Called BEFORE the underlying lock() blocks, so an inversion aborts with
/// a diagnosis instead of deadlocking silently under contention.
inline void PushRank(LockRank rank) {
  if (rank == LockRank::kUnranked) return;
  HeldRanks& held = TlsHeldRanks();
  if (held.depth > 0) {
    const LockRank top = held.ranks[held.depth - 1];
    if (static_cast<int>(top) >= static_cast<int>(rank)) {
      std::fprintf(
          stderr,
          "strg: LOCK RANK INVERSION: acquiring %s (%d) while holding %s "
          "(%d); the lock hierarchy (src/util/sync.h LockRank, DESIGN.md "
          "S15) requires strictly increasing ranks. Fix the acquisition "
          "order or re-rank the locks (and rerun scripts/lock_graph.py).\n",
          LockRankName(rank), static_cast<int>(rank), LockRankName(top),
          static_cast<int>(top));
      std::abort();
    }
  }
  if (held.depth == HeldRanks::kMaxDepth) {
    std::fprintf(stderr, "strg: held-rank stack overflow (%d locks)\n",
                 HeldRanks::kMaxDepth);
    std::abort();
  }
  held.ranks[held.depth++] = rank;
}

/// Removes `rank` from the held stack (topmost occurrence — release order
/// is LIFO under RAII, but hand-over-hand unlocking stays legal).
inline void PopRank(LockRank rank) {
  if (rank == LockRank::kUnranked) return;
  HeldRanks& held = TlsHeldRanks();
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.ranks[i] == rank) {
      for (int j = i; j + 1 < held.depth; ++j) {
        held.ranks[j] = held.ranks[j + 1];
      }
      --held.depth;
      return;
    }
  }
  std::fprintf(stderr,
               "strg: releasing rank %s that this thread does not hold\n",
               LockRankName(rank));
  std::abort();
}

}  // namespace sync_internal
#endif  // STRG_DEADLOCK_CHECK_ENABLED

/// Exclusive mutex. Same cost and semantics as std::mutex; the capability
/// tag is what lets the analysis connect STRG_GUARDED_BY fields to it.
/// Construct with the lock's LockRank — every mutex under src/ declares one
/// (the default kUnranked form is for tests/examples). Rank storage and
/// checking exist only under STRG_DEADLOCK_CHECK=ON; in release builds the
/// rank argument is discarded and Lock()/Unlock() compile to exactly the
/// std::mutex calls they always were (byte-identical hot paths).
class STRG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
#if STRG_DEADLOCK_CHECK_ENABLED
  explicit Mutex(LockRank rank) : rank_(rank) {}
#else
  // constexpr: a ranked global/static Mutex must get constant
  // initialization exactly like a default-constructed one (no dynamic
  // initializer — the release build is bit-identical either way).
  constexpr explicit Mutex(LockRank /*rank*/) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#if STRG_DEADLOCK_CHECK_ENABLED
  void Lock() STRG_ACQUIRE() {
    sync_internal::PushRank(rank_);  // before blocking: diagnose, not hang
    mu_.lock();
  }
  void Unlock() STRG_RELEASE() {
    // Pop BEFORE unlocking: the instant mu_ is released another thread may
    // destroy this Mutex (ParallelFor's completion handshake does exactly
    // that — the waiter owns the stack-local mutexes), so rank_ must not be
    // read after unlock().
    sync_internal::PopRank(rank_);
    mu_.unlock();
  }
  bool TryLock() STRG_TRY_ACQUIRE(true) {
    sync_internal::PushRank(rank_);
    if (mu_.try_lock()) return true;
    sync_internal::PopRank(rank_);
    return false;
  }
#else
  void Lock() STRG_ACQUIRE() { mu_.lock(); }
  void Unlock() STRG_RELEASE() { mu_.unlock(); }
  bool TryLock() STRG_TRY_ACQUIRE(true) { return mu_.try_lock(); }
#endif

 private:
  friend class CondVar;
  std::mutex mu_;
#if STRG_DEADLOCK_CHECK_ENABLED
  LockRank rank_ = LockRank::kUnranked;
#endif
};

/// Reader/writer mutex (std::shared_mutex underneath). Shared acquisitions
/// participate in the rank discipline exactly like exclusive ones: a reader
/// holding rank R may only acquire ranks > R.
class STRG_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
#if STRG_DEADLOCK_CHECK_ENABLED
  explicit SharedMutex(LockRank rank) : rank_(rank) {}
#else
  constexpr explicit SharedMutex(LockRank /*rank*/) {}  // see Mutex
#endif
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

#if STRG_DEADLOCK_CHECK_ENABLED
  void Lock() STRG_ACQUIRE() {
    sync_internal::PushRank(rank_);
    mu_.lock();
  }
  void Unlock() STRG_RELEASE() {
    sync_internal::PopRank(rank_);  // pop first: see Mutex::Unlock
    mu_.unlock();
  }
  void LockShared() STRG_ACQUIRE_SHARED() {
    sync_internal::PushRank(rank_);
    mu_.lock_shared();
  }
  void UnlockShared() STRG_RELEASE_SHARED() {
    sync_internal::PopRank(rank_);  // pop first: see Mutex::Unlock
    mu_.unlock_shared();
  }
#else
  void Lock() STRG_ACQUIRE() { mu_.lock(); }
  void Unlock() STRG_RELEASE() { mu_.unlock(); }
  void LockShared() STRG_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() STRG_RELEASE_SHARED() { mu_.unlock_shared(); }
#endif

 private:
  std::shared_mutex mu_;
#if STRG_DEADLOCK_CHECK_ENABLED
  LockRank rank_ = LockRank::kUnranked;
#endif
};

/// RAII exclusive lock over Mutex — the sanctioned replacement for
/// std::lock_guard / std::unique_lock in non-condition-variable code.
class STRG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) STRG_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() STRG_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class STRG_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) STRG_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() STRG_RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over SharedMutex.
class STRG_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) STRG_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() STRG_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to strg::Mutex. Wait() is annotated
/// STRG_REQUIRES(mu): the analysis verifies every waiter actually holds the
/// mutex it waits on, which std::condition_variable only checks at runtime
/// (and only in debug builds).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires before returning.
  void Wait(Mutex& mu) STRG_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait protocol, then
    // release the guard without unlocking — ownership stays with the caller
    // exactly as the annotation promises.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Waits until `pred()` holds; `pred` runs with `mu` held.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) STRG_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native, pred);
    native.release();
  }

  /// Timed wait: atomically releases `mu`, blocks until notified (or a
  /// spurious wakeup, or `deadline` passes), and re-acquires before
  /// returning. Returns false iff the deadline passed — callers re-check
  /// their predicate either way, exactly as with Wait(). This is what lets
  /// the serving layer wait on a request handle with a per-request deadline
  /// without busy-waiting (the async-runtime replacement for the old
  /// std::future::wait_until path).
  template <typename TimePoint>
  bool WaitUntil(Mutex& mu, const TimePoint& deadline) STRG_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace strg

#endif  // STRG_UTIL_SYNC_H_
