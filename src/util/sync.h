#ifndef STRG_UTIL_SYNC_H_
#define STRG_UTIL_SYNC_H_

#include <condition_variable>  // NOLINT(strg-naked-mutex): this is the one sanctioned wrapper site
#include <mutex>               // NOLINT(strg-naked-mutex): this is the one sanctioned wrapper site
#include <shared_mutex>        // NOLINT(strg-naked-mutex): this is the one sanctioned wrapper site

namespace strg {

/// Annotated synchronization layer.
///
/// Every mutex in the tree goes through these wrappers so Clang's
/// -Wthread-safety analysis can prove the lock discipline at compile time:
/// a field tagged STRG_GUARDED_BY(mu) cannot be touched without holding
/// `mu`, a method tagged STRG_REQUIRES(mu) cannot be called unlocked, and a
/// Mutex cannot be acquired twice on one path — each violation is a build
/// error under STRG_STATIC_ANALYSIS=ON, not a production race. On non-Clang
/// compilers every attribute expands to nothing and the wrappers compile
/// down to the std primitives they hold, so the annotated build is the same
/// binary GCC always produced (scripts/strg_lint.py enforces that no naked
/// std::mutex / std::condition_variable appears outside this header).
///
/// Conventions (see DESIGN.md §9 for the full guide):
///  - guarded fields:      `int x_ STRG_GUARDED_BY(mu_);`
///  - guarded pointees:    `T* p_ STRG_PT_GUARDED_BY(mu_);`
///  - private helpers that assume the lock: `void FooLocked() STRG_REQUIRES(mu_);`
///  - public entry points that take the lock: `void Foo() STRG_EXCLUDES(mu_);`
///  - deliberate opt-outs: `STRG_NO_THREAD_SAFETY_ANALYSIS` with a one-line
///    justification comment — bare opt-outs are rejected in review.

#if defined(__clang__) && (!defined(SWIG))
#define STRG_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define STRG_THREAD_ANNOTATION__(x)  // no-op: GCC/MSVC have no capability analysis
#endif

/// Tags a type as a lockable capability (the analysis tracks instances).
#define STRG_CAPABILITY(x) STRG_THREAD_ANNOTATION__(capability(x))
/// Tags an RAII type whose constructor acquires and destructor releases.
#define STRG_SCOPED_CAPABILITY STRG_THREAD_ANNOTATION__(scoped_lockable)
/// Field may only be read/written while holding `x`.
#define STRG_GUARDED_BY(x) STRG_THREAD_ANNOTATION__(guarded_by(x))
/// Pointee (not the pointer) may only be dereferenced while holding `x`.
#define STRG_PT_GUARDED_BY(x) STRG_THREAD_ANNOTATION__(pt_guarded_by(x))
/// Function body assumes the listed capabilities are already held.
#define STRG_REQUIRES(...) \
  STRG_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define STRG_REQUIRES_SHARED(...) \
  STRG_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
/// Function acquires / releases the listed capabilities.
#define STRG_ACQUIRE(...) \
  STRG_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define STRG_ACQUIRE_SHARED(...) \
  STRG_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define STRG_RELEASE(...) \
  STRG_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define STRG_RELEASE_SHARED(...) \
  STRG_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
/// Function must NOT be called with the listed capabilities held
/// (deadlock-by-reentry prevention for public entry points).
#define STRG_EXCLUDES(...) STRG_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
/// Try-acquire: `b` is the return value that means "acquired".
#define STRG_TRY_ACQUIRE(...) \
  STRG_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
/// Function returns a reference to the capability guarding its result.
#define STRG_RETURN_CAPABILITY(x) STRG_THREAD_ANNOTATION__(lock_returned(x))
/// Deliberate opt-out; always pair with a one-line justification comment.
#define STRG_NO_THREAD_SAFETY_ANALYSIS \
  STRG_THREAD_ANNOTATION__(no_thread_safety_analysis)
/// Documentation-only marker: the function is lock-free by design (it reads
/// relaxed atomics or immutable state) and intentionally holds no mutex.
/// Expands to nothing under every compiler; it exists so the *absence* of a
/// lock is visibly a decision, not an omission.
#define STRG_LOCK_FREE

/// Exclusive mutex. Same cost and semantics as std::mutex; the capability
/// tag is what lets the analysis connect STRG_GUARDED_BY fields to it.
class STRG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() STRG_ACQUIRE() { mu_.lock(); }
  void Unlock() STRG_RELEASE() { mu_.unlock(); }
  bool TryLock() STRG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer mutex (std::shared_mutex underneath).
class STRG_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() STRG_ACQUIRE() { mu_.lock(); }
  void Unlock() STRG_RELEASE() { mu_.unlock(); }
  void LockShared() STRG_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() STRG_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex — the sanctioned replacement for
/// std::lock_guard / std::unique_lock in non-condition-variable code.
class STRG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) STRG_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() STRG_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class STRG_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) STRG_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() STRG_RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over SharedMutex.
class STRG_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) STRG_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() STRG_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to strg::Mutex. Wait() is annotated
/// STRG_REQUIRES(mu): the analysis verifies every waiter actually holds the
/// mutex it waits on, which std::condition_variable only checks at runtime
/// (and only in debug builds).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires before returning.
  void Wait(Mutex& mu) STRG_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait protocol, then
    // release the guard without unlocking — ownership stays with the caller
    // exactly as the annotation promises.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Waits until `pred()` holds; `pred` runs with `mu` held.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) STRG_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native, pred);
    native.release();
  }

  /// Timed wait: atomically releases `mu`, blocks until notified (or a
  /// spurious wakeup, or `deadline` passes), and re-acquires before
  /// returning. Returns false iff the deadline passed — callers re-check
  /// their predicate either way, exactly as with Wait(). This is what lets
  /// the serving layer wait on a request handle with a per-request deadline
  /// without busy-waiting (the async-runtime replacement for the old
  /// std::future::wait_until path).
  template <typename TimePoint>
  bool WaitUntil(Mutex& mu, const TimePoint& deadline) STRG_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace strg

#endif  // STRG_UTIL_SYNC_H_
