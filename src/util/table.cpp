#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace strg {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::AddRow: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::AddNumericRow(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::AppendJson(std::string* out) const {
  out->append("{\"headers\":[");
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out->push_back(',');
    AppendJsonString(headers_[c], out);
  }
  out->append("],\"rows\":[");
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) out->push_back(',');
    out->push_back('[');
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      if (c > 0) out->push_back(',');
      AppendJsonString(rows_[r][c], out);
    }
    out->push_back(']');
  }
  out->append("]}");
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char ch : s) {
    switch (ch) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out->append(buf);
        } else {
          out->push_back(ch);
        }
    }
  }
  out->push_back('"');
}

std::string FormatDouble(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string FormatBytes(size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 3) {
    v /= 1024.0;
    ++u;
  }
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(u == 0 ? 0 : 1) << v << units[u];
  return ss.str();
}

std::string FormatDuration(double seconds) {
  auto total = static_cast<long long>(seconds + 0.5);
  long long h = total / 3600;
  long long m = (total % 3600) / 60;
  long long s = total % 60;
  std::ostringstream ss;
  if (h > 0) ss << h << "h ";
  if (h > 0 || m > 0) ss << m << "m ";
  ss << s << "s";
  return ss.str();
}

}  // namespace strg
