#ifndef STRG_UTIL_TABLE_H_
#define STRG_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace strg {

/// Minimal fixed-width table printer for the benchmark harnesses.
///
/// Benchmarks print the same rows/series the paper reports (e.g. Table 2 or
/// the series behind Figure 7); this helper keeps those reports aligned and
/// greppable without pulling in a formatting library.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; the row must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats each value with the given precision.
  void AddNumericRow(const std::vector<double>& values, int precision = 3);

  /// Renders the table with a header rule to the stream.
  void Print(std::ostream& os) const;

  /// Appends the table as a JSON object {"headers":[...],"rows":[[...]]}.
  /// Cells are emitted as JSON strings (they are already formatted text);
  /// consumers parse numerics back out per column.
  void AppendJson(std::string* out) const;

  size_t NumRows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for Table cells).
std::string FormatDouble(double v, int precision = 3);

/// Appends `s` to `out` as a JSON string literal (quotes + escapes).
void AppendJsonString(const std::string& s, std::string* out);

/// Formats a byte count as a human-readable string (e.g. "72.2MB").
std::string FormatBytes(size_t bytes);

/// Formats a duration given in seconds as "Hh Mm Ss".
std::string FormatDuration(double seconds);

}  // namespace strg

#endif  // STRG_UTIL_TABLE_H_
