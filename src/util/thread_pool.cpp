#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

namespace strg {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      // Explicit predicate loop (not the lambda-predicate Wait): the
      // analysis proves guarded accesses in this function body, which a
      // closure would hide from it.
      while (!stop_ && tasks_.empty()) cv_.Wait(mutex_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t chunks = std::min(n, workers_.size() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;

  // Completion handshake. `remaining` is guarded by `done_mutex` (not an
  // atomic): the last worker must publish "done" and notify while holding
  // the lock, so the waiter — which can only re-check the predicate under
  // the same lock — cannot wake, return, and destroy these locals while a
  // worker still touches them.
  std::exception_ptr error;
  Mutex error_mutex{LockRank::kPoolError};
  Mutex done_mutex{LockRank::kPoolDone};
  CondVar done_cv;
  size_t remaining = 0;

  std::vector<std::function<void()>> chunk_tasks;
  for (size_t c = 0; c < chunks; ++c) {
    size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    size_t hi = std::min(end, lo + chunk_size);
    ++remaining;
    chunk_tasks.push_back([&, lo, hi] {
      try {
        for (size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        MutexLock elock(error_mutex);
        if (!error) error = std::current_exception();
      }
      {
        MutexLock dlock(done_mutex);
        if (--remaining == 0) done_cv.NotifyAll();
      }
    });
  }
  {
    MutexLock lock(mutex_);
    for (auto& t : chunk_tasks) tasks_.push(std::move(t));
  }
  cv_.NotifyAll();

  {
    MutexLock lock(done_mutex);
    while (remaining != 0) done_cv.Wait(done_mutex);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace strg
