#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace strg {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t chunks = std::min(n, workers_.size() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;

  std::atomic<size_t> remaining{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  size_t scheduled = 0;
  for (size_t c = 0; c < chunks; ++c) {
    size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    size_t hi = std::min(end, lo + chunk_size);
    ++scheduled;
    remaining.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.push([&, lo, hi] {
        try {
          for (size_t i = lo; i < hi; ++i) body(i);
        } catch (...) {
          std::lock_guard<std::mutex> elock(error_mutex);
          if (!error) error = std::current_exception();
        }
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> dlock(done_mutex);
          done_cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (error) std::rethrow_exception(error);
  (void)scheduled;
}

}  // namespace strg
