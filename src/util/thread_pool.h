#ifndef STRG_UTIL_THREAD_POOL_H_
#define STRG_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace strg {

/// Minimal fixed-size thread pool for data-parallel loops.
///
/// The hot loops of this library (EM's K x M distance matrix, index
/// builds) are embarrassingly parallel over items; ParallelFor chunks an
/// index range over the workers and blocks until every chunk finished.
/// Exceptions thrown by the body are rethrown on the calling thread.
class ThreadPool {
 public:
  /// `threads` = 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t NumThreads() const { return workers_.size(); }

  /// Runs body(i) for i in [begin, end), distributed over the pool, and
  /// waits for completion. Safe to call with begin >= end (no-op).
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace strg

#endif  // STRG_UTIL_THREAD_POOL_H_
