#ifndef STRG_UTIL_THREAD_POOL_H_
#define STRG_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/sync.h"

namespace strg {

/// Minimal fixed-size thread pool.
///
/// Two usage modes:
///  - ParallelFor: data-parallel loops (EM's K x M distance matrix, index
///    builds) — chunks an index range over the workers and blocks until
///    every chunk finished. Exceptions thrown by the body are rethrown on
///    the calling thread.
///  - Submit: one-off tasks returning a std::future — the serving layer's
///    QueryEngine executes admitted queries this way, so callers can wait
///    with a deadline (future::wait_until) instead of busy-waiting.
class ThreadPool {
 public:
  /// `threads` = 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t NumThreads() const { return workers_.size(); }

  /// Runs body(i) for i in [begin, end), distributed over the pool, and
  /// waits for completion. Safe to call with begin >= end (no-op).
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body)
      STRG_EXCLUDES(mutex_);

  /// Schedules `f()` on the pool and returns a future for its result.
  /// Exceptions propagate through the future. Tasks already queued when the
  /// pool is destroyed still run to completion before the workers join.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>>
      STRG_EXCLUDES(mutex_) {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      MutexLock lock(mutex_);
      if (stop_) {
        throw std::runtime_error("ThreadPool::Submit on stopped pool");
      }
      tasks_.push([task] { (*task)(); });
    }
    cv_.NotifyOne();
    return result;
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mutex_{LockRank::kThreadPool};
  CondVar cv_;
  std::queue<std::function<void()>> tasks_ STRG_GUARDED_BY(mutex_);
  bool stop_ STRG_GUARDED_BY(mutex_) = false;
};

}  // namespace strg

#endif  // STRG_UTIL_THREAD_POOL_H_
