#ifndef STRG_UTIL_TIMER_H_
#define STRG_UTIL_TIMER_H_

#include <chrono>

namespace strg {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Reset the start point to "now".
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last Restart().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace strg

#endif  // STRG_UTIL_TIMER_H_
