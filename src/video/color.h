#ifndef STRG_VIDEO_COLOR_H_
#define STRG_VIDEO_COLOR_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace strg::video {

/// 8-bit RGB pixel.
struct Rgb {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;

  bool operator==(const Rgb&) const = default;
};

/// Euclidean distance in RGB space (range [0, 441.7]).
inline double ColorDistance(const Rgb& a, const Rgb& b) {
  double dr = static_cast<double>(a.r) - b.r;
  double dg = static_cast<double>(a.g) - b.g;
  double db = static_cast<double>(a.b) - b.b;
  return std::sqrt(dr * dr + dg * dg + db * db);
}

/// Clamps a double to the 8-bit range and rounds.
inline uint8_t ClampByte(double v) {
  return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0) + 0.5);
}

/// Linear interpolation between two colors, t in [0, 1].
inline Rgb Lerp(const Rgb& a, const Rgb& b, double t) {
  return Rgb{ClampByte(a.r + (b.r - a.r) * t), ClampByte(a.g + (b.g - a.g) * t),
             ClampByte(a.b + (b.b - a.b) * t)};
}

}  // namespace strg::video

#endif  // STRG_VIDEO_COLOR_H_
