#include "video/frame.h"

#include <sstream>

namespace strg::video {

std::string Frame::ToPpm() const {
  std::ostringstream ss;
  ss << "P3\n" << width_ << " " << height_ << "\n255\n";
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const Rgb& p = At(x, y);
      ss << static_cast<int>(p.r) << " " << static_cast<int>(p.g) << " "
         << static_cast<int>(p.b) << (x + 1 == width_ ? "" : " ");
    }
    ss << "\n";
  }
  return ss.str();
}

}  // namespace strg::video
