#ifndef STRG_VIDEO_FRAME_H_
#define STRG_VIDEO_FRAME_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

#include "video/color.h"

namespace strg::video {

/// A single raster video frame (row-major RGB).
class Frame {
 public:
  Frame() = default;
  Frame(int width, int height, Rgb fill = Rgb{0, 0, 0})
      : width_(width), height_(height),
        pixels_(static_cast<size_t>(width) * height, fill) {}

  int width() const { return width_; }
  int height() const { return height_; }
  size_t size() const { return pixels_.size(); }

  Rgb& At(int x, int y) {
    assert(Contains(x, y));
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }
  const Rgb& At(int x, int y) const {
    assert(Contains(x, y));
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }

  bool Contains(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  const std::vector<Rgb>& pixels() const { return pixels_; }
  std::vector<Rgb>& pixels() { return pixels_; }

  /// Serializes to an ASCII PPM (P3) string — used by examples to dump
  /// frames for eyeballing without any image library.
  std::string ToPpm() const;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Rgb> pixels_;
};

}  // namespace strg::video

#endif  // STRG_VIDEO_FRAME_H_
