#include "video/motion.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace strg::video {

double Distance(const Point& a, const Point& b) {
  double dx = a.x - b.x, dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Path::Path(std::vector<Point> waypoints) : waypoints_(std::move(waypoints)) {
  if (waypoints_.empty()) {
    throw std::invalid_argument("Path: needs at least one waypoint");
  }
  cumulative_.resize(waypoints_.size(), 0.0);
  for (size_t i = 1; i < waypoints_.size(); ++i) {
    cumulative_[i] =
        cumulative_[i - 1] + Distance(waypoints_[i - 1], waypoints_[i]);
  }
  total_length_ = cumulative_.back();
}

Point Path::At(double t) const {
  t = std::clamp(t, 0.0, 1.0);
  if (waypoints_.size() == 1 || total_length_ == 0.0) return waypoints_[0];
  double target = t * total_length_;
  // Find the segment containing the target arc length.
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), target);
  size_t hi = static_cast<size_t>(it - cumulative_.begin());
  if (hi == 0) return waypoints_[0];
  if (hi >= waypoints_.size()) return waypoints_.back();
  size_t lo = hi - 1;
  double seg = cumulative_[hi] - cumulative_[lo];
  double frac = seg > 0.0 ? (target - cumulative_[lo]) / seg : 0.0;
  return waypoints_[lo] + (waypoints_[hi] - waypoints_[lo]) * frac;
}

Path Path::Line(Point a, Point b) { return Path({a, b}); }

Path Path::UTurn(Point a, Point turn, Point b) { return Path({a, turn, b}); }

}  // namespace strg::video
