#ifndef STRG_VIDEO_MOTION_H_
#define STRG_VIDEO_MOTION_H_

#include <vector>

namespace strg::video {

/// 2-D point in frame coordinates (sub-pixel precision).
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }
};

double Distance(const Point& a, const Point& b);

/// A motion path: a polyline through waypoints, sampled by normalized time
/// t in [0, 1] with constant speed along the arc length.
///
/// This single primitive expresses every moving pattern used by the paper's
/// synthetic workload (Section 6.1): vertical / horizontal / diagonal passes
/// are 2-point polylines, U-turns are 3-point polylines.
class Path {
 public:
  Path() = default;
  explicit Path(std::vector<Point> waypoints);

  /// Position at normalized time t (clamped to [0, 1]).
  Point At(double t) const;

  /// Total arc length of the polyline.
  double Length() const { return total_length_; }

  const std::vector<Point>& waypoints() const { return waypoints_; }

  /// Straight segment from a to b.
  static Path Line(Point a, Point b);

  /// Out-and-back path: a -> turn -> b (the paper's "U-turn" pattern).
  static Path UTurn(Point a, Point turn, Point b);

 private:
  std::vector<Point> waypoints_;
  std::vector<double> cumulative_;  // cumulative arc length per waypoint
  double total_length_ = 0.0;
};

}  // namespace strg::video

#endif  // STRG_VIDEO_MOTION_H_
