#include "video/ppm_io.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>  // NOLINT(strg-direct-io): PPM codec at the pipeline edge, not durable state
#include <sstream>
#include <stdexcept>

namespace strg::video {

namespace {

/// Skips whitespace and '#' comments; returns the next token.
class PpmLexer {
 public:
  explicit PpmLexer(std::string_view bytes) : bytes_(bytes) {}

  std::string NextToken() {
    SkipSpaceAndComments();
    size_t start = pos_;
    while (pos_ < bytes_.size() &&
           !std::isspace(static_cast<unsigned char>(bytes_[pos_]))) {
      ++pos_;
    }
    if (start == pos_) throw std::runtime_error("PPM: unexpected end of file");
    return std::string(bytes_.substr(start, pos_ - start));
  }

  int NextInt() {
    std::string tok = NextToken();
    try {
      return std::stoi(tok);
    } catch (...) {
      throw std::runtime_error("PPM: expected integer, got '" + tok + "'");
    }
  }

  /// Position just after the single whitespace byte that terminates the
  /// header (binary pixel data starts here).
  size_t SkipOneWhitespace() {
    if (pos_ < bytes_.size() &&
        std::isspace(static_cast<unsigned char>(bytes_[pos_]))) {
      ++pos_;
    }
    return pos_;
  }

 private:
  void SkipSpaceAndComments() {
    while (pos_ < bytes_.size()) {
      char c = bytes_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < bytes_.size() && bytes_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

Frame ParsePpm(std::string_view bytes) {
  PpmLexer lex(bytes);
  std::string magic = lex.NextToken();
  if (magic != "P3" && magic != "P6") {
    throw std::runtime_error("PPM: unsupported magic '" + magic + "'");
  }
  int width = lex.NextInt();
  int height = lex.NextInt();
  int maxval = lex.NextInt();
  if (width <= 0 || height <= 0) throw std::runtime_error("PPM: bad size");
  if (maxval <= 0 || maxval > 255) {
    throw std::runtime_error("PPM: only 8-bit maxval supported");
  }

  Frame frame(width, height);
  const size_t pixels = frame.size();
  if (magic == "P3") {
    for (size_t i = 0; i < pixels; ++i) {
      int r = lex.NextInt(), g = lex.NextInt(), b = lex.NextInt();
      frame.pixels()[i] = Rgb{static_cast<uint8_t>(r),
                              static_cast<uint8_t>(g),
                              static_cast<uint8_t>(b)};
    }
  } else {
    size_t data = lex.SkipOneWhitespace();
    if (bytes.size() - data < pixels * 3) {
      throw std::runtime_error("PPM: truncated P6 pixel data");
    }
    for (size_t i = 0; i < pixels; ++i) {
      frame.pixels()[i] =
          Rgb{static_cast<uint8_t>(bytes[data + 3 * i]),
              static_cast<uint8_t>(bytes[data + 3 * i + 1]),
              static_cast<uint8_t>(bytes[data + 3 * i + 2])};
    }
  }
  return frame;
}

Frame LoadPpm(const std::string& path) {
  // clang-format off
  std::ifstream in(path, std::ios::binary);  // NOLINT(strg-direct-io): user image files, not engine state
  // clang-format on
  if (!in) throw std::runtime_error("PPM: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParsePpm(buf.str());
}

void SavePpm(const Frame& frame, const std::string& path) {
  // clang-format off
  std::ofstream out(path, std::ios::binary | std::ios::trunc);  // NOLINT(strg-direct-io): debug frame dump, not engine state
  // clang-format on
  if (!out) throw std::runtime_error("PPM: cannot open " + path);
  out << "P6\n" << frame.width() << " " << frame.height() << "\n255\n";
  for (const Rgb& p : frame.pixels()) {
    out.put(static_cast<char>(p.r));
    out.put(static_cast<char>(p.g));
    out.put(static_cast<char>(p.b));
  }
  if (!out) throw std::runtime_error("PPM: short write to " + path);
}

std::vector<Frame> LoadPpmDirectory(const std::string& dir) {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".ppm") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<Frame> frames;
  frames.reserve(paths.size());
  for (const std::string& p : paths) frames.push_back(LoadPpm(p));
  return frames;
}

}  // namespace strg::video
