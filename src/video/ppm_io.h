#ifndef STRG_VIDEO_PPM_IO_H_
#define STRG_VIDEO_PPM_IO_H_

#include <string>
#include <vector>

#include "video/frame.h"

namespace strg::video {

/// Parses a PPM image (both ASCII "P3" and binary "P6", 8-bit, with
/// comments). Throws std::runtime_error on malformed input. Together with
/// Frame::ToPpm this gives the library a real frame I/O path without any
/// image library: export frames from ffmpeg (`-c:v ppm`) and ingest them.
Frame ParsePpm(std::string_view bytes);

/// Reads a PPM file from disk.
Frame LoadPpm(const std::string& path);

/// Writes a frame as binary P6 (compact) to disk.
void SavePpm(const Frame& frame, const std::string& path);

/// Loads every `.ppm` file in a directory, sorted by filename — the frame
/// sequence convention produced by `ffmpeg -i video.mp4 out%06d.ppm`.
std::vector<Frame> LoadPpmDirectory(const std::string& dir);

}  // namespace strg::video

#endif  // STRG_VIDEO_PPM_IO_H_
