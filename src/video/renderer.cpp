#include "video/renderer.h"

#include <cmath>

#include "util/random.h"

namespace strg::video {

namespace {

void DrawShape(Frame* frame, PartShape shape, Point center, double width,
               double height, Rgb color) {
  int x0 = static_cast<int>(std::floor(center.x - width / 2.0));
  int x1 = static_cast<int>(std::ceil(center.x + width / 2.0));
  int y0 = static_cast<int>(std::floor(center.y - height / 2.0));
  int y1 = static_cast<int>(std::ceil(center.y + height / 2.0));
  double rx = width / 2.0, ry = height / 2.0;
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      if (!frame->Contains(x, y)) continue;
      if (shape == PartShape::kEllipse) {
        double nx = (x + 0.5 - center.x) / rx;
        double ny = (y + 0.5 - center.y) / ry;
        if (nx * nx + ny * ny > 1.0) continue;
      } else {
        if (x + 0.5 < center.x - rx || x + 0.5 > center.x + rx ||
            y + 0.5 < center.y - ry || y + 0.5 > center.y + ry) {
          continue;
        }
      }
      frame->At(x, y) = color;
    }
  }
}

}  // namespace

Frame RenderFrame(const SceneSpec& scene, int frame_index) {
  Frame frame(scene.width, scene.height, scene.background.base);

  // Background checker texture.
  if (scene.background.tile_size > 0) {
    int ts = scene.background.tile_size;
    for (int y = 0; y < scene.height; ++y) {
      for (int x = 0; x < scene.width; ++x) {
        if (((x / ts) + (y / ts)) % 2 == 1) {
          frame.At(x, y) = scene.background.alt;
        }
      }
    }
  }

  for (const StaticItem& item : scene.static_items) {
    DrawShape(&frame, item.shape, item.center, item.width, item.height,
              item.color);
  }

  for (const ObjectSpec& obj : scene.objects) {
    if (!obj.ActiveAt(frame_index)) continue;
    Point anchor = obj.PositionAt(frame_index);
    for (const ObjectPart& part : obj.parts) {
      DrawShape(&frame, part.shape, anchor + part.offset, part.width,
                part.height, part.color);
    }
  }

  if (scene.noise_stddev > 0.0) {
    // Mix the frame index into the seed so every frame gets an independent
    // but reproducible noise field.
    Rng rng(scene.seed * 0x9E3779B97F4A7C15ULL +
            static_cast<uint64_t>(frame_index) + 1);
    for (Rgb& p : frame.pixels()) {
      p.r = ClampByte(p.r + rng.Gaussian(0.0, scene.noise_stddev));
      p.g = ClampByte(p.g + rng.Gaussian(0.0, scene.noise_stddev));
      p.b = ClampByte(p.b + rng.Gaussian(0.0, scene.noise_stddev));
    }
  }
  return frame;
}

std::vector<Frame> RenderScene(const SceneSpec& scene) {
  std::vector<Frame> frames;
  frames.reserve(static_cast<size_t>(scene.num_frames));
  for (int t = 0; t < scene.num_frames; ++t) {
    frames.push_back(RenderFrame(scene, t));
  }
  return frames;
}

int CountActiveObjects(const SceneSpec& scene, int frame_index) {
  int n = 0;
  for (const ObjectSpec& obj : scene.objects) {
    if (obj.ActiveAt(frame_index)) ++n;
  }
  return n;
}

}  // namespace strg::video
