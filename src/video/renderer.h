#ifndef STRG_VIDEO_RENDERER_H_
#define STRG_VIDEO_RENDERER_H_

#include <vector>

#include "video/frame.h"
#include "video/scene.h"

namespace strg::video {

/// Rasterizes one frame of a scene. Deterministic: the sensor-noise stream
/// is seeded from (scene.seed, frame_index), so rendering frame t twice
/// produces identical pixels.
Frame RenderFrame(const SceneSpec& scene, int frame_index);

/// Renders the whole scene. Prefer RenderFrame in streaming pipelines; this
/// is a convenience for short clips in tests and examples.
std::vector<Frame> RenderScene(const SceneSpec& scene);

/// Number of objects visible in a given frame.
int CountActiveObjects(const SceneSpec& scene, int frame_index);

}  // namespace strg::video

#endif  // STRG_VIDEO_RENDERER_H_
