#ifndef STRG_VIDEO_SCENE_H_
#define STRG_VIDEO_SCENE_H_

#include <cstdint>
#include <vector>

#include "video/color.h"
#include "video/motion.h"

namespace strg::video {

/// Primitive shapes the renderer can rasterize.
enum class PartShape { kRectangle, kEllipse };

/// One rigid piece of a moving object.
///
/// Objects are deliberately multi-part with distinct colors (e.g. a person =
/// head + torso + legs): region segmentation then produces several regions
/// per object, exercising the paper's ORG->OG merging step (Section 2.3.2).
struct ObjectPart {
  PartShape shape = PartShape::kRectangle;
  Point offset;        ///< part center relative to the object anchor
  double width = 4.0;  ///< part extent in pixels
  double height = 4.0;
  Rgb color;
};

/// A moving object: parts sharing one motion path over a frame interval.
struct ObjectSpec {
  int id = -1;     ///< ground-truth identity (for tracking-quality metrics)
  int route = -1;  ///< ground-truth motion pattern / route id (scene-level)
  std::vector<ObjectPart> parts;
  Path path;
  int start_frame = 0;  ///< first frame the object is visible (inclusive)
  int end_frame = 0;    ///< one past the last visible frame

  /// True if the object is on screen at `frame`.
  bool ActiveAt(int frame) const {
    return frame >= start_frame && frame < end_frame;
  }

  /// Anchor position at `frame` (normalized time along the path).
  Point PositionAt(int frame) const {
    int span = end_frame - start_frame;
    double t = span <= 1 ? 0.0
                         : static_cast<double>(frame - start_frame) /
                               static_cast<double>(span - 1);
    return path.At(t);
  }
};

/// A static scene element drawn over the background (furniture, road
/// markings); part of the background from the pipeline's point of view.
struct StaticItem {
  PartShape shape = PartShape::kRectangle;
  Point center;
  double width = 8.0;
  double height = 8.0;
  Rgb color;
};

/// Background: flat base color plus a coarse checker texture so the
/// background segments into a stable set of regions (a realistic BG graph,
/// not one giant region).
struct BackgroundSpec {
  Rgb base{96, 96, 96};
  Rgb alt{104, 104, 104};
  int tile_size = 20;  ///< checker tile edge in pixels; <=0 disables texture
};

/// Complete synthetic video description.
///
/// This is the repository's stand-in for the paper's real camera streams
/// (Table 1): a stationary camera, a fixed background, and moving objects
/// entering and leaving the field of view. Per-pixel Gaussian noise models
/// sensor noise / illumination flicker.
struct SceneSpec {
  int width = 80;
  int height = 60;
  int num_frames = 0;
  BackgroundSpec background;
  std::vector<StaticItem> static_items;
  std::vector<ObjectSpec> objects;
  double noise_stddev = 0.0;  ///< per-channel Gaussian sensor noise
  uint64_t seed = 1;          ///< seeds the per-frame noise streams
};

}  // namespace strg::video

#endif  // STRG_VIDEO_SCENE_H_
