#include "video/scenes.h"

#include <vector>

#include "util/random.h"

namespace strg::video {

namespace {

// Saturated palettes kept far from the gray background (96..104 per
// channel) so regions segment cleanly even under sensor noise.
const Rgb kShirtColors[] = {
    {200, 40, 40}, {40, 160, 60}, {40, 80, 200}, {210, 160, 30},
    {160, 40, 170}, {30, 170, 170}, {230, 110, 30}, {120, 200, 40},
};
const Rgb kPantsColors[] = {
    {30, 30, 120}, {40, 40, 40}, {110, 70, 30}, {60, 60, 90},
};
const Rgb kSkin{220, 180, 150};

const Rgb kCarColors[] = {
    {200, 30, 30}, {30, 30, 200}, {230, 230, 230}, {30, 30, 30},
    {190, 190, 40}, {40, 170, 60}, {170, 170, 180}, {140, 40, 150},
};

struct Route {
  Path path;
  bool uturn = false;
};

/// Lab routes: walks between landmark positions (door, desks, cabinet,
/// room center), including a few out-and-back (U-turn) routes. People pick
/// a route and follow it with small endpoint jitter — the route structure
/// real indoor streams have, and what the per-stream cluster counts of
/// Table 2 reflect.
std::vector<Route> LabRoutes(const SceneParams& p, int count) {
  double w = p.width, h = p.height;
  Point door{w * 0.08, h * 0.35};
  Point desk1{w * 0.20, h * 0.70};
  Point desk2{w * 0.78, h * 0.72};
  Point cabinet{w * 0.88, h * 0.30};
  Point center{w * 0.50, h * 0.45};
  Point window{w * 0.55, h * 0.12};

  std::vector<Route> all = {
      {Path::Line(door, desk1), false},
      {Path::Line(desk1, door), false},
      {Path::Line(door, desk2), false},
      {Path::Line(desk2, cabinet), false},
      {Path::Line(cabinet, desk1), false},
      {Path::Line(window, desk2), false},
      {Path::UTurn(door, center, door), true},
      {Path::UTurn(desk1, window, desk1), true},
      {Path::UTurn(desk2, center, desk2), true},
      {Path::Line(desk2, door), false},
      {Path::Line(center, cabinet), false},
      {Path::UTurn(cabinet, center, cabinet), true},
  };
  if (count > static_cast<int>(all.size())) count = static_cast<int>(all.size());
  all.resize(static_cast<size_t>(count));
  return all;
}

/// Vehicle classes (car / van / truck): body + cabin dimensions. The
/// traffic streams' motion patterns are direction x vehicle class — the
/// kind of structure the paper's ~6 traffic clusters reflect.
struct VehicleClass {
  double body_w, body_h, cabin_w, cabin_h;
  double lane_offset;  ///< heavier vehicles ride a slightly outer line
};
constexpr VehicleClass kVehicleClasses[3] = {
    {10.0, 5.0, 5.0, 3.0, 0.0},    // car (inner lane)
    {13.0, 6.0, 6.0, 4.0, 14.0},   // van (middle lane)
    {18.0, 7.0, 7.0, 5.0, 28.0},   // truck (outer lane)
};

/// Traffic routes: direction (eastbound/westbound) x vehicle class.
/// route id = dir * 3 + class.
std::vector<Route> TrafficRoutes(const SceneParams& p, int count) {
  std::vector<Route> routes;
  double x_in = -10.0, x_out = p.width + 10.0;
  for (int dir = 0; dir < 2; ++dir) {
    double base_y = dir == 0 ? p.height * 0.36 : p.height * 0.43;
    for (int cls = 0; cls < 3; ++cls) {
      // The class's lane offset is applied per vehicle in MakeVehicle (with
      // wobble); the route path itself is the direction's base line.
      double y = base_y;
      Point from{dir == 0 ? x_in : x_out, y};
      Point to{dir == 0 ? x_out : x_in, y};
      routes.push_back({Path::Line(from, to), false});
    }
  }
  if (count < static_cast<int>(routes.size())) {
    routes.resize(static_cast<size_t>(count));
  }
  return routes;
}

ObjectSpec MakePerson(int id, Rng* rng, const SceneParams& p, int start,
                      const std::vector<Route>& routes) {
  ObjectSpec obj;
  obj.id = id;
  obj.start_frame = start;
  obj.end_frame = start + p.object_lifetime;

  const Rgb shirt = kShirtColors[rng->Index(std::size(kShirtColors))];
  const Rgb pants = kPantsColors[rng->Index(std::size(kPantsColors))];
  // Head / torso / legs stacked vertically: three regions with distinct
  // colors that must be merged into a single OG by the pipeline.
  obj.parts = {
      {PartShape::kEllipse, {0.0, -6.0}, 4.0, 4.0, kSkin},
      {PartShape::kRectangle, {0.0, -1.0}, 6.0, 6.0, shirt},
      {PartShape::kRectangle, {0.0, 5.0}, 5.0, 6.0, pants},
  };

  obj.route = static_cast<int>(rng->Index(routes.size()));
  const Route& route = routes[static_cast<size_t>(obj.route)];
  // Follow the route with endpoint jitter and a meander point: people
  // neither retrace pixel-identical paths nor walk perfect lines, which is
  // what makes indoor streams harder to cluster than lane-bound traffic.
  std::vector<Point> wps = route.path.waypoints();
  for (Point& wp : wps) {
    wp.x += rng->Gaussian(0.0, 3.5);
    wp.y += rng->Gaussian(0.0, 3.5);
  }
  if (wps.size() == 2) {
    Point mid = (wps[0] + wps[1]) * 0.5;
    mid.x += rng->Gaussian(0.0, 6.0);
    mid.y += rng->Gaussian(0.0, 6.0);
    wps.insert(wps.begin() + 1, mid);
  } else if (wps.size() == 3) {
    wps[1].x += rng->Gaussian(0.0, 5.0);
    wps[1].y += rng->Gaussian(0.0, 5.0);
  }
  obj.path = Path(std::move(wps));
  return obj;
}

ObjectSpec MakeVehicle(int id, Rng* rng, const SceneParams& p, int start,
                       const std::vector<Route>& routes) {
  ObjectSpec obj;
  obj.id = id;
  obj.start_frame = start;
  obj.end_frame = start + p.object_lifetime;

  obj.route = static_cast<int>(rng->Index(routes.size()));
  const VehicleClass& cls = kVehicleClasses[static_cast<size_t>(obj.route) % 3];

  const Rgb body = kCarColors[rng->Index(std::size(kCarColors))];
  const Rgb cabin = Lerp(body, Rgb{255, 255, 255}, 0.45);
  obj.parts = {
      {PartShape::kRectangle, {0.0, 0.0}, cls.body_w, cls.body_h, body},
      {PartShape::kRectangle,
       {0.0, -(cls.body_h + cls.cabin_h) / 2.0 + 0.5},
       cls.cabin_w, cls.cabin_h, cabin},
  };

  const Route& route = routes[static_cast<size_t>(obj.route)];
  std::vector<Point> wps = route.path.waypoints();
  // Each class keeps its own lane (cars inner, trucks outer); small wobble
  // keeps individual vehicles distinct.
  double wobble = cls.lane_offset * (p.height / 100.0) +
                  rng->Uniform(-1.0, 1.0);
  for (Point& wp : wps) wp.y += wobble;
  obj.path = Path(std::move(wps));
  return obj;
}

int TotalFrames(const SceneParams& p) {
  if (p.num_objects == 0) return p.object_lifetime;
  return (p.num_objects - 1) * p.spawn_gap + p.object_lifetime;
}

}  // namespace

SceneSpec MakeLabScene(const SceneParams& params) {
  SceneSpec scene;
  scene.width = params.width;
  scene.height = params.height;
  scene.noise_stddev = params.noise_stddev;
  scene.seed = params.seed;
  scene.num_frames = TotalFrames(params);
  scene.background.base = {120, 118, 110};
  scene.background.alt = {126, 124, 116};
  scene.background.tile_size = params.width / 4;

  // Two desks and a cabinet — static items that belong to the BG graph.
  scene.static_items = {
      {PartShape::kRectangle,
       {params.width * 0.18, params.height * 0.88},
       params.width * 0.22, params.height * 0.12, Rgb{150, 110, 60}},
      {PartShape::kRectangle,
       {params.width * 0.80, params.height * 0.90},
       params.width * 0.24, params.height * 0.10, Rgb{150, 110, 60}},
      {PartShape::kRectangle,
       {params.width * 0.94, params.height * 0.18},
       params.width * 0.10, params.height * 0.24, Rgb{80, 90, 100}},
  };

  Rng rng(params.seed);
  int num_routes = params.num_routes > 0 ? params.num_routes : 9;
  std::vector<Route> routes = LabRoutes(params, num_routes);
  for (int i = 0; i < params.num_objects; ++i) {
    scene.objects.push_back(
        MakePerson(i, &rng, params, i * params.spawn_gap, routes));
  }
  return scene;
}

SceneSpec MakeTrafficScene(const SceneParams& params) {
  SceneSpec scene;
  scene.width = params.width;
  scene.height = params.height;
  scene.noise_stddev = params.noise_stddev;
  scene.seed = params.seed;
  scene.num_frames = TotalFrames(params);
  scene.background.base = {90, 140, 80};  // grass
  scene.background.alt = {96, 146, 86};
  scene.background.tile_size = params.width / 4;

  // Road surface plus a dashed center line. The dashes are deliberate:
  // a single full-width line would be split in two by every passing
  // vehicle, and the jumping half-line centroids would masquerade as a
  // moving object; short dashes stay stable under occlusion.
  scene.static_items = {
      {PartShape::kRectangle,
       {params.width * 0.5, params.height * 0.62},
       static_cast<double>(params.width), params.height * 0.64,
       Rgb{70, 70, 72}},
  };
  for (int dash = 0; dash < params.width / 16; ++dash) {
    scene.static_items.push_back(
        {PartShape::kRectangle,
         {params.width * (0.06 + 0.2 * dash), params.height * 0.62},
         6.0, 1.5, Rgb{210, 200, 60}});
  }

  Rng rng(params.seed);
  int num_routes = params.num_routes > 0 ? params.num_routes : 6;
  std::vector<Route> routes = TrafficRoutes(params, num_routes);
  for (int i = 0; i < params.num_objects; ++i) {
    scene.objects.push_back(
        MakeVehicle(i, &rng, params, i * params.spawn_gap, routes));
  }
  return scene;
}

}  // namespace strg::video
