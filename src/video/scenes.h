#ifndef STRG_VIDEO_SCENES_H_
#define STRG_VIDEO_SCENES_H_

#include <cstdint>

#include "video/scene.h"

namespace strg::video {

/// Parameters for the scene factories that emulate the paper's four real
/// camera streams (Table 1). `num_objects` controls how many distinct
/// moving objects (hence OGs) the stream contains; durations scale with it.
struct SceneParams {
  int num_objects = 20;
  int width = 80;
  int height = 60;
  int object_lifetime = 24;  ///< frames each object stays on screen
  int spawn_gap = 12;        ///< frames between consecutive object entries
  double noise_stddev = 2.0;
  uint64_t seed = 7;
  /// Number of distinct motion routes objects choose from (0 = the scene
  /// type's default: 9 for lab, 6 for traffic). Real streams have route
  /// structure — people walk door<->desk paths, vehicles keep lanes — and
  /// this is what the paper's per-stream cluster counts (Table 2) reflect.
  int num_routes = 0;
};

/// Indoor laboratory scene: people (multi-part blobs: head/torso/legs)
/// walking between the door and desks, some turning back (U-turns). Used to
/// emulate the paper's Lab1/Lab2 streams.
SceneSpec MakeLabScene(const SceneParams& params);

/// Outdoor traffic scene: vehicles (body+cabin) crossing on two lanes in
/// both directions over a road surface. Emulates Traffic1/Traffic2; the
/// movement is more uniform than the lab scene, which is why the paper
/// reports lower clustering error on the traffic streams.
SceneSpec MakeTrafficScene(const SceneParams& params);

}  // namespace strg::video

#endif  // STRG_VIDEO_SCENES_H_
