// ctest-labels: unit
#include <gtest/gtest.h>

#include "cluster/bic.h"
#include "distance/eged.h"
#include "util/random.h"

namespace strg::cluster {
namespace {

using dist::Sequence;

Sequence Flat(double value, size_t len) {
  Sequence s(len);
  for (auto& v : s) {
    v.fill(0.0);
    v[0] = value;
  }
  return s;
}

std::vector<Sequence> Blobs(std::initializer_list<double> centers,
                            size_t per_cluster, uint64_t seed) {
  std::vector<Sequence> data;
  Rng rng(seed);
  for (double c : centers) {
    for (size_t i = 0; i < per_cluster; ++i) {
      // Fixed length: EGED between flat sequences scales with the common
      // length, so mixing lengths would create artificial sub-structure
      // that legitimately pushes BIC toward larger K.
      data.push_back(Flat(c + rng.Gaussian(0.0, 0.4), 8));
    }
  }
  return data;
}

TEST(Bic, PenaltyGrowsWithK) {
  // Same log-likelihood: more components -> lower BIC.
  EXPECT_GT(Bic(-100.0, 2, 50), Bic(-100.0, 4, 50));
}

TEST(Bic, PenaltyGrowsWithDataSize) {
  double small = Bic(-100.0, 3, 10);
  double large = Bic(-100.0, 3, 1000);
  EXPECT_GT(small, large);
}

TEST(Bic, EtaFormulaMatchesSection42) {
  // eta = (K-1) + K d(d+3)/2 with d = 1 -> 3K - 1; BIC = ll - eta log M.
  double ll = -42.0;
  size_t k = 4, m = 100;
  double expected = ll - (3.0 * k - 1.0) * std::log(static_cast<double>(m));
  EXPECT_DOUBLE_EQ(Bic(ll, k, m), expected);
}

TEST(FindOptimalK, RecoversThreeClusters) {
  auto data = Blobs({0.0, 15.0, 30.0}, 12, 5);
  dist::EgedDistance eged;
  ClusterParams params;
  params.seed = 11;
  BicSweepResult sweep = FindOptimalK(data, 1, 6, eged, params);
  EXPECT_EQ(sweep.best_k, 3u);
  ASSERT_EQ(sweep.bic_values.size(), 6u);
  ASSERT_EQ(sweep.models.size(), 6u);
}

TEST(FindOptimalK, BicPeaksNearBestK) {
  auto data = Blobs({0.0, 20.0}, 15, 7);
  dist::EgedDistance eged;
  BicSweepResult sweep = FindOptimalK(data, 1, 5, eged);
  double best = sweep.bic_values[sweep.best_k - 1];
  for (double b : sweep.bic_values) EXPECT_LE(b, best);
  // Classification-likelihood BIC may split one blob once (its small-K
  // bias) but must find at least the two real blobs and not hallucinate
  // many more.
  EXPECT_GE(sweep.best_k, 2u);
  EXPECT_LE(sweep.best_k, 3u);
}

TEST(FindOptimalK, SingleClusterDataStaysSmall) {
  // The classification likelihood BIC scores can justify splitting one
  // Gaussian blob into two halves (a known small-K bias of CL-based
  // criteria); what matters is that it does not hallucinate many clusters.
  auto data = Blobs({5.0}, 20, 9);
  dist::EgedDistance eged;
  BicSweepResult sweep = FindOptimalK(data, 1, 4, eged);
  EXPECT_LE(sweep.best_k, 2u);
}

TEST(FindOptimalK, RejectsBadRange) {
  auto data = Blobs({0.0}, 4, 1);
  dist::EgedDistance eged;
  EXPECT_THROW(FindOptimalK(data, 0, 3, eged), std::invalid_argument);
  EXPECT_THROW(FindOptimalK(data, 5, 3, eged), std::invalid_argument);
}

}  // namespace
}  // namespace strg::cluster
