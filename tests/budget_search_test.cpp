// ctest-labels: unit
#include <gtest/gtest.h>

#include "distance/eged.h"
#include "index/strg_index.h"
#include "mtree/mtree.h"
#include "synth/generator.h"

namespace strg {
namespace {

using dist::Sequence;

struct Workload {
  std::vector<Sequence> db;
  std::vector<Sequence> queries;
};

Workload MakeWorkload() {
  synth::SynthParams params;
  params.items_per_cluster = 6;
  params.noise_pct = 8.0;
  params.seed = 77;
  Workload w;
  w.db = synth::GenerateSyntheticOgs(params).Sequences(synth::SynthScaling());
  params.items_per_cluster = 1;
  params.seed = 78;
  auto q = synth::GenerateSyntheticOgs(params).Sequences(
      synth::SynthScaling());
  w.queries.assign(q.begin(), q.begin() + 6);
  return w;
}

TEST(BudgetedSearch, StrgIndexRespectsBudget) {
  Workload w = MakeWorkload();
  index::StrgIndexParams params;
  params.num_clusters = 12;
  params.cluster_params.max_iterations = 6;
  index::StrgIndex idx(params);
  idx.AddSegment(core::BackgroundGraph{}, w.db);

  for (const Sequence& q : w.queries) {
    auto result = idx.Knn(q, 5, nullptr, 40);
    EXPECT_LE(result.distance_computations, 40u);
  }
}

TEST(BudgetedSearch, StrgIndexBudgetZeroMeansUnlimited) {
  Workload w = MakeWorkload();
  index::StrgIndexParams params;
  params.num_clusters = 12;
  params.cluster_params.max_iterations = 6;
  index::StrgIndex idx(params);
  idx.AddSegment(core::BackgroundGraph{}, w.db);

  auto exact = idx.Knn(w.queries[0], 5);
  auto unlimited = idx.Knn(w.queries[0], 5, nullptr, 0);
  ASSERT_EQ(exact.hits.size(), unlimited.hits.size());
  for (size_t i = 0; i < exact.hits.size(); ++i) {
    EXPECT_DOUBLE_EQ(exact.hits[i].distance, unlimited.hits[i].distance);
  }
}

TEST(BudgetedSearch, LargerBudgetNeverWorseTop1) {
  Workload w = MakeWorkload();
  index::StrgIndexParams params;
  params.num_clusters = 12;
  params.cluster_params.max_iterations = 6;
  index::StrgIndex idx(params);
  idx.AddSegment(core::BackgroundGraph{}, w.db);

  for (const Sequence& q : w.queries) {
    auto small = idx.Knn(q, 1, nullptr, 30);
    auto large = idx.Knn(q, 1, nullptr, 300);
    if (!small.hits.empty() && !large.hits.empty()) {
      EXPECT_LE(large.hits[0].distance, small.hits[0].distance + 1e-9);
    }
  }
}

TEST(BudgetedSearch, MTreeRespectsBudget) {
  Workload w = MakeWorkload();
  dist::EgedMetricDistance metric;
  mtree::MTree tree(&metric);
  for (size_t i = 0; i < w.db.size(); ++i) tree.Insert(w.db[i], i);

  for (const Sequence& q : w.queries) {
    auto result = tree.Knn(q, 5, 40);
    EXPECT_LE(result.distance_computations,
              40u + 16u);  // may finish the node it is scanning
  }
}

TEST(BudgetedSearch, BudgetedAnswersAreSubqualityNotGarbage) {
  // Budgeted results must still come from the database and be sorted.
  Workload w = MakeWorkload();
  index::StrgIndexParams params;
  params.num_clusters = 12;
  params.cluster_params.max_iterations = 6;
  index::StrgIndex idx(params);
  idx.AddSegment(core::BackgroundGraph{}, w.db);

  auto result = idx.Knn(w.queries[0], 5, nullptr, 60);
  double prev = -1.0;
  for (const auto& h : result.hits) {
    EXPECT_LT(h.og_id, w.db.size());
    EXPECT_GE(h.distance, prev);
    prev = h.distance;
    // Reported distance is the true metric distance.
    EXPECT_NEAR(h.distance, dist::EgedMetric(w.queries[0], w.db[h.og_id]),
                1e-9);
  }
}

}  // namespace
}  // namespace strg
