// ctest-labels: cluster
//
// Equivalence suite for the triangle-inequality bounded assignment layer
// (src/cluster/bounds.h). The contract under test is strong: with
// ClusterParams::use_bounds flipped, every clusterer must return a
// bit-identical Clustering (EXPECT_EQ on raw doubles, not near-equality),
// while the ClusterStats counters prove the bounded path actually pruned.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "cluster/bounds.h"
#include "cluster/em.h"
#include "cluster/khm.h"
#include "cluster/kmeans.h"
#include "cluster/seeding.h"
#include "distance/eged.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace strg::cluster {
namespace {

using dist::Sequence;

Sequence Flat(double value, size_t len = 6) {
  Sequence s(len);
  for (auto& v : s) {
    v.fill(0.0);
    v[0] = value;
  }
  return s;
}

// One noisy trajectory: first feature wobbles around `base`, second carries
// independent jitter, lengths vary so the gap costs participate.
Sequence Wobble(Rng* rng, double base) {
  Sequence s(static_cast<size_t>(rng->UniformInt(5, 12)));
  for (auto& v : s) {
    v.fill(0.0);
    v[0] = base + rng->Gaussian(0.0, 0.5);
    v[1] = rng->Gaussian(0.0, 0.3);
  }
  return s;
}

// `blobs` well-separated groups of `per` trajectories each.
std::vector<Sequence> MakeBlobs(size_t blobs, size_t per, uint64_t seed) {
  Rng rng(seed);
  std::vector<Sequence> data;
  for (size_t b = 0; b < blobs; ++b) {
    for (size_t i = 0; i < per; ++i) {
      data.push_back(Wobble(&rng, 12.0 * static_cast<double>(b)));
    }
  }
  return data;
}

void ExpectBitIdentical(const Clustering& a, const Clustering& b) {
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.log_likelihood, b.log_likelihood);
  EXPECT_EQ(a.classification_log_likelihood, b.classification_log_likelihood);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(a.sigmas, b.sigmas);
  ASSERT_EQ(a.centroids.size(), b.centroids.size());
  for (size_t c = 0; c < a.centroids.size(); ++c) {
    ASSERT_EQ(a.centroids[c].size(), b.centroids[c].size());
    for (size_t i = 0; i < a.centroids[c].size(); ++i) {
      for (size_t f = 0; f < dist::kFeatureDim; ++f) {
        EXPECT_EQ(a.centroids[c][i][f], b.centroids[c][i][f])
            << "centroid " << c << " point " << i << " feature " << f;
      }
    }
  }
}

ClusterParams WithBounds(ClusterParams p, bool on) {
  p.use_bounds = on;
  return p;
}

TEST(ClusterBoundsTest, EmBitIdenticalAcrossK) {
  auto data = MakeBlobs(4, 12, 7);
  dist::EgedMetricDistance metric;
  for (size_t k : {2u, 3u, 5u, 8u}) {
    ClusterParams params;
    params.seed = 29;
    ClusterStats on_stats, off_stats;
    params.stats = &on_stats;
    Clustering on = EmCluster(data, k, metric, WithBounds(params, true));
    params.stats = &off_stats;
    Clustering off = EmCluster(data, k, metric, WithBounds(params, false));
    ExpectBitIdentical(on, off);
    EXPECT_EQ(on_stats.reseeds, off_stats.reseeds) << "k=" << k;
    if (k >= 5) {
      EXPECT_GT(on_stats.assign_prunes + on_stats.hamerly_skips, 0u)
          << "k=" << k;
    }
    EXPECT_EQ(off_stats.assign_prunes, 0u);
    EXPECT_EQ(off_stats.hamerly_skips, 0u);
  }
}

TEST(ClusterBoundsTest, EmBitIdenticalWithRestarts) {
  auto data = MakeBlobs(3, 10, 11);
  dist::EgedMetricDistance metric;
  ClusterParams params;
  params.restarts = 4;
  params.seed = 5;
  // Identical per-restart fits imply identical classification likelihoods,
  // so the strict-> winner reduction picks the same restart in both modes.
  Clustering on = EmCluster(data, 3, metric, WithBounds(params, true));
  Clustering off = EmCluster(data, 3, metric, WithBounds(params, false));
  ExpectBitIdentical(on, off);
}

// Exact duplicates everywhere: every scan is a wall of ties, coinciding
// centroids keep the anti-collapse guard firing, and each guard reseed goes
// through ReplaceCentroid's bound invalidation. The bounded path must
// reproduce the exhaustive lowest-index tie-breaks exactly through all of it.
TEST(ClusterBoundsTest, EmGuardReseedKeepsBoundsConsistent) {
  std::vector<Sequence> data(16, Flat(1.0, 8));
  dist::EgedMetricDistance metric;
  ClusterParams params;
  params.max_iterations = 10;
  params.seed = 3;
  ClusterStats on_stats, off_stats;
  params.stats = &on_stats;
  Clustering on = EmCluster(data, 2, metric, WithBounds(params, true));
  params.stats = &off_stats;
  Clustering off = EmCluster(data, 2, metric, WithBounds(params, false));
  ExpectBitIdentical(on, off);
  EXPECT_GT(on_stats.reseeds, 0u) << "fixture no longer forces a reseed";
  EXPECT_EQ(on_stats.reseeds, off_stats.reseeds);

  // Independent oracle for the final hard assignment: exhaustive strict->
  // score scan over the returned model, computed with the scalar distance.
  for (size_t j = 0; j < data.size(); ++j) {
    int best = 0;
    double best_s = -std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < on.centroids.size(); ++c) {
      double s = ScoreLogDensity(on.sigmas[c], metric(data[j], on.centroids[c]));
      if (s > best_s) {
        best_s = s;
        best = static_cast<int>(c);
      }
    }
    EXPECT_EQ(on.assignment[j], best) << "item " << j;
  }
}

// Near-duplicates plus one distant blob and k = 3: two seeds land in the
// dense blob, converge onto each other, and the guard reseed fires mid-run
// (not just every iteration) — the bounds must stay admissible afterward.
TEST(ClusterBoundsTest, EmReseedMidRunBitIdentical) {
  Rng rng(41);
  std::vector<Sequence> data;
  for (int i = 0; i < 20; ++i) {
    data.push_back(Flat(1.0 + 1e-7 * i, 8));
  }
  for (int i = 0; i < 4; ++i) data.push_back(Wobble(&rng, 40.0));
  dist::EgedMetricDistance metric;
  ClusterParams params;
  params.max_iterations = 12;
  params.seed = 17;
  ClusterStats on_stats, off_stats;
  params.stats = &on_stats;
  Clustering on = EmCluster(data, 3, metric, WithBounds(params, true));
  params.stats = &off_stats;
  Clustering off = EmCluster(data, 3, metric, WithBounds(params, false));
  ExpectBitIdentical(on, off);
  EXPECT_EQ(on_stats.reseeds, off_stats.reseeds);
}

TEST(ClusterBoundsTest, KMeansBitIdentical) {
  auto data = MakeBlobs(4, 10, 23);
  dist::EgedMetricDistance metric;
  for (size_t k : {2u, 6u}) {
    ClusterParams params;
    params.seed = 7;
    ClusterStats on_stats, off_stats;
    params.stats = &on_stats;
    Clustering on = KMeansCluster(data, k, metric, WithBounds(params, true));
    params.stats = &off_stats;
    Clustering off = KMeansCluster(data, k, metric, WithBounds(params, false));
    EXPECT_EQ(on.assignment, off.assignment);
    EXPECT_EQ(on.iterations, off.iterations);
    ASSERT_EQ(on.centroids.size(), off.centroids.size());
    for (size_t c = 0; c < on.centroids.size(); ++c) {
      EXPECT_EQ(on.centroids[c], off.centroids[c]);
    }
    if (k >= 6) {
      EXPECT_GT(on_stats.assign_prunes + on_stats.hamerly_skips, 0u);
      EXPECT_LT(on_stats.assign_distances, off_stats.assign_distances);
    }
  }
}

TEST(ClusterBoundsTest, KhmMatchesBruteForceAssignment) {
  auto data = MakeBlobs(3, 8, 31);
  dist::EgedMetricDistance metric;
  ClusterParams params;
  params.seed = 19;
  Clustering on = KhmCluster(data, 3, metric, WithBounds(params, true));
  Clustering off = KhmCluster(data, 3, metric, WithBounds(params, false));
  // KHM weights every centroid per item, so there is nothing for the bounds
  // to skip; both knob settings run the same batched path.
  ExpectBitIdentical(on, off);
  for (size_t j = 0; j < data.size(); ++j) {
    int best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < on.centroids.size(); ++c) {
      double d = metric(data[j], on.centroids[c]);
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(c);
      }
    }
    EXPECT_EQ(on.assignment[j], best) << "item " << j;
  }
}

// Forwards to a metric EGED through the SequenceDistance interface only.
// Not an EgedMetricDistance by type, so BoundedAssigner and the seeding
// D^2 pass must take their scalar paths — pinning those paths bitwise
// against the flat-kernel fast paths the bare metric type unlocks.
class ForwardingMetric final : public dist::SequenceDistance {
 public:
  double operator()(const Sequence& a, const Sequence& b) const override {
    return inner_(a, b);
  }
  double Bounded(const Sequence& a, const Sequence& b,
                 double tau) const override {
    return inner_.Bounded(a, b, tau);
  }
  bool IsMetric() const override { return true; }
  std::string Name() const override { return "EGED_M_FWD"; }

 private:
  dist::EgedMetricDistance inner_;
};

TEST(ClusterBoundsTest, SeedingFlatPathMatchesScalar) {
  auto data = MakeBlobs(4, 16, 3);
  dist::EgedMetricDistance metric;
  ForwardingMetric forwarded;
  for (size_t k : {2u, 5u}) {
    ClusterStats fast_stats, slow_stats;
    Rng rng_fast(101), rng_slow(101);
    auto fast = SeedCentroidIndices(data, k, metric, &rng_fast, 0, &fast_stats);
    auto slow =
        SeedCentroidIndices(data, k, forwarded, &rng_slow, 0, &slow_stats);
    EXPECT_EQ(fast, slow) << "k=" << k;
    EXPECT_EQ(fast_stats.seeding_distances, slow_stats.seeding_distances);
  }
}

TEST(ClusterBoundsTest, ForwardedMetricBitIdenticalToFlatKernels) {
  auto data = MakeBlobs(3, 9, 13);
  dist::EgedMetricDistance metric;
  ForwardingMetric forwarded;
  ClusterParams params;
  params.seed = 47;
  Clustering batched = EmCluster(data, 3, metric, WithBounds(params, true));
  Clustering scalar = EmCluster(data, 3, forwarded, WithBounds(params, true));
  ExpectBitIdentical(batched, scalar);
}

TEST(ClusterBoundsTest, CountingWrapperPrunesAndStaysIdentical) {
  auto data = MakeBlobs(4, 12, 53);
  dist::EgedMetricDistance metric;
  dist::CountingDistance counted_on(&metric);
  dist::CountingDistance counted_off(&metric);
  ClusterParams params;
  params.seed = 9;
  // CountingDistance forwards IsMetric() but not Bounded(), so every
  // evaluation in both modes is a full (counted) computation — making the
  // counts a third-party measure of the pruning.
  Clustering on = EmCluster(data, 6, counted_on, WithBounds(params, true));
  Clustering off = EmCluster(data, 6, counted_off, WithBounds(params, false));
  ExpectBitIdentical(on, off);
  EXPECT_LT(counted_on.count(), counted_off.count());
}

TEST(ClusterBoundsTest, StatsShowAssignmentSavings) {
  auto data = MakeBlobs(4, 16, 61);
  dist::EgedMetricDistance metric;
  ClusterParams params;
  params.seed = 71;
  params.restarts = 2;
  ClusterStats on_stats, off_stats;
  params.stats = &on_stats;
  Clustering on = EmCluster(data, 8, metric, WithBounds(params, true));
  params.stats = &off_stats;
  Clustering off = EmCluster(data, 8, metric, WithBounds(params, false));
  ExpectBitIdentical(on, off);
  EXPECT_GT(on_stats.assign_prunes + on_stats.hamerly_skips, 0u);
  EXPECT_LT(on_stats.AssignmentDistances(), off_stats.AssignmentDistances());
  EXPECT_EQ(on_stats.seeding_distances, off_stats.seeding_distances);
}

// Direct adversarial check of BoundedAssigner against exhaustive oracles
// through several rounds of drifts and replacements, with duplicate items
// and coinciding centroids in the mix.
TEST(ClusterBoundsTest, AssignerMatchesBruteForceUnderDriftAndReplace) {
  Rng rng(97);
  std::vector<Sequence> data;
  for (int i = 0; i < 10; ++i) data.push_back(Wobble(&rng, 0.0));
  for (int i = 0; i < 10; ++i) data.push_back(Wobble(&rng, 15.0));
  for (int i = 0; i < 4; ++i) data.push_back(Flat(7.0, 6));  // duplicates
  const size_t m = data.size();
  const size_t k = 6;

  dist::EgedMetricDistance metric;
  BoundedAssigner assigner(data, metric, /*use_bounds=*/true);
  ASSERT_TRUE(assigner.bounded());
  ASSERT_TRUE(assigner.batched());

  std::vector<Sequence> cents;
  for (size_t c = 0; c < k; ++c) cents.push_back(data[rng.Index(m)]);
  cents[3] = cents[2];  // coinciding centroids from the start
  ClusterStats stats;
  assigner.SetCentroids(cents, &stats);

  std::vector<double> sigmas(k);
  for (int round = 0; round < 6; ++round) {
    for (auto& s : sigmas) s = rng.Uniform(0.05, 2.0);
    for (size_t j = 0; j < m; ++j) {
      // Oracle 1: exhaustive strict-< ascending argmin.
      size_t want_idx = 0;
      double want_d = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < k; ++c) {
        double d = metric(data[j], cents[c]);
        if (d < want_d) {
          want_d = d;
          want_idx = c;
        }
      }
      auto got = assigner.NearestCentroid(j, /*need_exact=*/true, &stats);
      EXPECT_EQ(got.index, want_idx) << "round " << round << " item " << j;
      EXPECT_EQ(got.distance, want_d) << "round " << round << " item " << j;

      // Oracle 2: exhaustive strict-> classification scan.
      size_t want_c = 0;
      double want_s = -std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < k; ++c) {
        double s = ScoreLogDensity(sigmas[c], metric(data[j], cents[c]));
        if (s > want_s) {
          want_s = s;
          want_c = c;
        }
      }
      auto scored = assigner.BestScoringComponent(j, sigmas, &stats);
      EXPECT_EQ(scored.index, want_c) << "round " << round << " item " << j;
      EXPECT_EQ(scored.score, want_s) << "round " << round << " item " << j;

      // Oracle 3: exact nearest distance (the guard's scan).
      EXPECT_EQ(assigner.NearestDistance(j, &stats), want_d)
          << "round " << round << " item " << j;
    }

    // Mutate: drift some centroids (including a no-op copy that must cost
    // nothing), replace one arbitrarily.
    for (size_t c = 0; c < k; ++c) {
      if (rng.Bernoulli(0.5)) cents[c] = data[rng.Index(m)];
    }
    assigner.SetCentroids(cents, &stats);
    size_t victim = rng.Index(k);
    cents[victim] = Wobble(&rng, rng.Uniform(-5.0, 25.0));
    assigner.ReplaceCentroid(victim, cents[victim], &stats);
  }
  EXPECT_GT(stats.assign_prunes + stats.hamerly_skips, 0u);
}

}  // namespace

// Distinct suite so scripts/check.sh can gtest_filter the TSan stage onto
// the one test that exercises pooled restarts.
TEST(ClusterBoundsParallel, RestartEquivalence) {
  auto data = MakeBlobs(3, 12, 83);
  dist::EgedMetricDistance metric;
  ThreadPool pool(4);
  for (bool bounds : {true, false}) {
    ClusterParams serial;
    serial.restarts = 4;
    serial.seed = 59;
    serial.use_bounds = bounds;
    ClusterParams pooled = serial;
    pooled.pool = &pool;
    ClusterStats serial_stats, pooled_stats;
    serial.stats = &serial_stats;
    pooled.stats = &pooled_stats;
    Clustering a = EmCluster(data, 3, metric, serial);
    Clustering b = EmCluster(data, 3, metric, pooled);
    ExpectBitIdentical(a, b);
    // Per-restart counters merge in restart order, so the totals agree too.
    EXPECT_EQ(serial_stats.TotalDistances(), pooled_stats.TotalDistances());
    EXPECT_EQ(serial_stats.assign_prunes, pooled_stats.assign_prunes);
  }
}

}  // namespace strg::cluster
