// ctest-labels: cluster
#include <gtest/gtest.h>

#include <set>

#include "cluster/centroid.h"
#include "cluster/em.h"
#include "cluster/khm.h"
#include "cluster/kmeans.h"
#include "cluster/metrics.h"
#include "distance/eged.h"
#include "util/random.h"

namespace strg::cluster {
namespace {

using dist::FeatureVec;
using dist::Sequence;

Sequence Flat(double value, size_t len) {
  Sequence s(len);
  for (auto& v : s) {
    v.fill(0.0);
    v[0] = value;
  }
  return s;
}

/// Two well-separated groups of sequences around values 0 and 20.
struct TwoBlobs {
  std::vector<Sequence> data;
  std::vector<int> labels;
};

TwoBlobs MakeTwoBlobs(size_t per_cluster = 12, uint64_t seed = 3) {
  TwoBlobs out;
  Rng rng(seed);
  for (size_t c = 0; c < 2; ++c) {
    double base = c == 0 ? 0.0 : 20.0;
    for (size_t i = 0; i < per_cluster; ++i) {
      size_t len = static_cast<size_t>(rng.UniformInt(6, 12));
      Sequence s = Flat(base + rng.Gaussian(0.0, 0.5), len);
      out.data.push_back(std::move(s));
      out.labels.push_back(static_cast<int>(c));
    }
  }
  return out;
}

TEST(WeightedCentroid, AveragesEqualLengthSequences) {
  std::vector<Sequence> data{Flat(0.0, 5), Flat(10.0, 5)};
  Sequence c = WeightedCentroid(data, {1.0, 1.0});
  ASSERT_EQ(c.size(), 5u);
  EXPECT_NEAR(c[2][0], 5.0, 1e-9);
}

TEST(WeightedCentroid, RespectsWeights) {
  std::vector<Sequence> data{Flat(0.0, 5), Flat(10.0, 5)};
  Sequence c = WeightedCentroid(data, {3.0, 1.0});
  EXPECT_NEAR(c[0][0], 2.5, 1e-9);
}

TEST(WeightedCentroid, LengthIsWeightedMean) {
  std::vector<Sequence> data{Flat(1.0, 10), Flat(1.0, 20)};
  EXPECT_EQ(WeightedCentroid(data, {1.0, 1.0}).size(), 15u);
  EXPECT_EQ(WeightedCentroid(data, {1.0, 0.0}).size(), 10u);
}

TEST(WeightedCentroid, ThrowsWithoutPositiveWeight) {
  std::vector<Sequence> data{Flat(1.0, 4)};
  EXPECT_THROW(WeightedCentroid(data, {0.0}), std::invalid_argument);
  EXPECT_THROW(WeightedCentroid(data, {1.0, 1.0}), std::invalid_argument);
}

TEST(CentroidOfSubset, UsesOnlyMembers) {
  std::vector<Sequence> data{Flat(0.0, 4), Flat(10.0, 4), Flat(99.0, 4)};
  Sequence c = CentroidOfSubset(data, {0, 1});
  EXPECT_NEAR(c[0][0], 5.0, 1e-9);
}

TEST(EmCluster, SeparatesTwoBlobs) {
  TwoBlobs blobs = MakeTwoBlobs();
  dist::EgedDistance eged;
  Clustering model = EmCluster(blobs.data, 2, eged);
  ASSERT_EQ(model.NumClusters(), 2u);
  EXPECT_NEAR(ClusteringErrorRate(model.assignment, blobs.labels), 0.0, 1e-9);
}

TEST(EmCluster, WeightsSumToOne) {
  TwoBlobs blobs = MakeTwoBlobs();
  dist::EgedDistance eged;
  Clustering model = EmCluster(blobs.data, 3, eged);
  double sum = 0;
  for (double w : model.weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (double s : model.sigmas) EXPECT_GT(s, 0.0);
}

TEST(EmCluster, LogLikelihoodImprovesOverSingleCluster) {
  TwoBlobs blobs = MakeTwoBlobs();
  dist::EgedDistance eged;
  Clustering one = EmCluster(blobs.data, 1, eged);
  Clustering two = EmCluster(blobs.data, 2, eged);
  EXPECT_GT(two.log_likelihood, one.log_likelihood);
}

TEST(EmCluster, DeterministicForFixedSeed) {
  TwoBlobs blobs = MakeTwoBlobs();
  dist::EgedDistance eged;
  ClusterParams params;
  params.seed = 17;
  Clustering a = EmCluster(blobs.data, 2, eged, params);
  Clustering b = EmCluster(blobs.data, 2, eged, params);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.log_likelihood, b.log_likelihood);
}

TEST(EmCluster, KClampedToDataSize) {
  std::vector<Sequence> tiny{Flat(0, 4), Flat(1, 4)};
  dist::EgedDistance eged;
  Clustering model = EmCluster(tiny, 10, eged);
  EXPECT_LE(model.NumClusters(), 2u);
}

TEST(EmCluster, ThrowsOnEmptyInput) {
  dist::EgedDistance eged;
  EXPECT_THROW(EmCluster({}, 2, eged), std::invalid_argument);
}

TEST(EmLogLikelihood, MatchesFittedModel) {
  TwoBlobs blobs = MakeTwoBlobs();
  dist::EgedDistance eged;
  Clustering model = EmCluster(blobs.data, 2, eged);
  double ll = EmLogLikelihood(blobs.data, model, eged);
  // The E-step's log-likelihood is computed from the pre-M-step params, so
  // allow a small gap — but they must be in the same ballpark.
  EXPECT_NEAR(ll, model.log_likelihood,
              0.05 * std::abs(model.log_likelihood) + 5.0);
}

TEST(KMeansCluster, SeparatesTwoBlobs) {
  TwoBlobs blobs = MakeTwoBlobs();
  dist::EgedDistance eged;
  Clustering model = KMeansCluster(blobs.data, 2, eged);
  EXPECT_NEAR(ClusteringErrorRate(model.assignment, blobs.labels), 0.0, 1e-9);
}

TEST(KhmCluster, SeparatesTwoBlobs) {
  TwoBlobs blobs = MakeTwoBlobs();
  dist::EgedDistance eged;
  Clustering model = KhmCluster(blobs.data, 2, eged);
  EXPECT_NEAR(ClusteringErrorRate(model.assignment, blobs.labels), 0.0, 1e-9);
}

TEST(KMeansCluster, AssignmentsCoverAllItems) {
  TwoBlobs blobs = MakeTwoBlobs();
  dist::EgedDistance eged;
  Clustering model = KMeansCluster(blobs.data, 3, eged);
  ASSERT_EQ(model.assignment.size(), blobs.data.size());
  for (int a : model.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 3);
  }
}

TEST(ClusteringErrorRate, PerfectAndPermuted) {
  std::vector<int> truth{0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(ClusteringErrorRate(truth, truth), 0.0);
  // Permuted labels are still a perfect clustering.
  std::vector<int> permuted{2, 2, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(ClusteringErrorRate(permuted, truth), 0.0);
}

TEST(ClusteringErrorRate, CountsMisassignments) {
  std::vector<int> truth{0, 0, 0, 1, 1, 1};
  std::vector<int> pred{0, 0, 1, 1, 1, 1};
  EXPECT_NEAR(ClusteringErrorRate(pred, truth), 100.0 / 6.0, 1e-9);
}

TEST(ClusteringErrorRate, MorePredictedThanTrueClusters) {
  std::vector<int> truth{0, 0, 0, 0};
  std::vector<int> pred{0, 1, 2, 3};
  EXPECT_NEAR(ClusteringErrorRate(pred, truth), 75.0, 1e-9);
}

TEST(Distortion, ZeroForExactCentroids) {
  std::vector<Sequence> truth{Flat(0, 6), Flat(10, 6)};
  dist::EgedMetricDistance metric;
  EXPECT_NEAR(Distortion(truth, truth, metric, 10.0), 0.0, 1e-9);
}

TEST(Distortion, GrowsWithCentroidError) {
  std::vector<Sequence> truth{Flat(0, 6), Flat(10, 6)};
  std::vector<Sequence> near{Flat(0.5, 6), Flat(10.5, 6)};
  std::vector<Sequence> far{Flat(2.0, 6), Flat(13.0, 6)};
  dist::EgedMetricDistance metric;
  double d_near = Distortion(near, truth, metric, 10.0);
  double d_far = Distortion(far, truth, metric, 10.0);
  EXPECT_GT(d_far, d_near);
  EXPECT_GT(d_near, 0.0);
}

}  // namespace
}  // namespace strg::cluster
