// ctest-labels: unit
//
// Runtime leg of the deadlock-freedom layer (DESIGN.md §15): under
// STRG_DEADLOCK_CHECK=ON an out-of-order acquisition must abort with a
// rank-inversion diagnosis, legal (strictly increasing) chains must run
// clean, and the checker itself must never leak state through TryLock
// failures or unranked locks. Compiled into every build: when the option is
// OFF the death-test half compiles out and the remaining tests document
// that the no-op build imposes no ordering at all.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "util/sync.h"

namespace strg {
namespace {

TEST(DeadlockRank, LegalIncreasingChainRunsClean) {
  // The deepest legal write chain from the LockRank table, in order.
  Mutex ingest{LockRank::kIngestSharded};
  Mutex writer{LockRank::kEngineWriter};
  Mutex store{LockRank::kRecordStore};
  Mutex cache{LockRank::kBufferCache};
  Mutex pool{LockRank::kThreadPool};
  MutexLock l1(ingest);
  MutexLock l2(writer);
  MutexLock l3(store);
  MutexLock l4(cache);
  MutexLock l5(pool);
  SUCCEED();
}

TEST(DeadlockRank, UnrankedLocksAreExemptInAnyOrder) {
  Mutex a;  // default-constructed: kUnranked
  Mutex b{LockRank::kUnranked};
  Mutex ranked{LockRank::kSnapshot};
  MutexLock l1(ranked);
  MutexLock l2(a);  // unranked under a ranked lock: fine
  MutexLock l3(b);
  SUCCEED();
}

TEST(DeadlockRank, SharedAcquisitionJoinsTheHierarchy) {
  SharedMutex map{LockRank::kShardMap};
  Mutex writer{LockRank::kEngineWriter};
  ReaderLock r(map);
  MutexLock w(writer);  // kShardMap(300) -> kEngineWriter(400): increasing
  SUCCEED();
}

#if STRG_DEADLOCK_CHECK_ENABLED

TEST(DeadlockRankDeathTest, InversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex done{LockRank::kPoolDone};
  Mutex error{LockRank::kPoolError};
  EXPECT_DEATH(
      {
        MutexLock outer(done);   // 1300
        MutexLock inner(error);  // 1200 while holding 1300: inversion
      },
      "LOCK RANK INVERSION.*kPoolError.*kPoolDone");
}

TEST(DeadlockRankDeathTest, SameRankReacquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two distinct mutexes at one rank: the hierarchy demands STRICTLY
  // increasing, so rank ties are rejected too (they would allow an
  // AB/BA cycle between two threads).
  Mutex a{LockRank::kResultCache};
  Mutex b{LockRank::kResultCache};
  EXPECT_DEATH(
      {
        MutexLock la(a);
        MutexLock lb(b);
      },
      "LOCK RANK INVERSION.*kResultCache.*kResultCache");
}

TEST(DeadlockRankDeathTest, SharedThenLowerExclusiveAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SharedMutex map{LockRank::kShardMap};       // 300
  Mutex ingest{LockRank::kIngestSharded};     // 100
  EXPECT_DEATH(
      {
        ReaderLock r(map);
        MutexLock w(ingest);
      },
      "LOCK RANK INVERSION.*kIngestSharded.*kShardMap");
}

TEST(DeadlockRank, FailedTryLockDoesNotLeakARank) {
  // A worker holds the high-rank lock so the main thread's TryLock fails;
  // the checker must pop the speculative push, or the subsequent LOWER-rank
  // acquisition below would abort as an inversion.
  Mutex high{LockRank::kPoolDone};
  Mutex low{LockRank::kThreadPool};
  std::atomic<bool> held{false};
  std::atomic<bool> release{false};
  std::thread worker([&] {
    high.Lock();
    held.store(true);
    while (!release.load()) std::this_thread::yield();
    high.Unlock();
  });
  while (!held.load()) std::this_thread::yield();
  EXPECT_FALSE(high.TryLock());
  {
    MutexLock l(low);  // would abort if the failed TryLock leaked kPoolDone
  }
  release.store(true);
  worker.join();
}

TEST(DeadlockRank, RanksClearAfterReleaseSoLowerIsLegalAgain) {
  Mutex high{LockRank::kAsyncRuntime};
  Mutex low{LockRank::kIngestSharded};
  { MutexLock l(high); }
  MutexLock l2(low);  // high was released: no ordering constraint remains
  SUCCEED();
}

#else  // !STRG_DEADLOCK_CHECK_ENABLED

TEST(DeadlockRank, NoOpBuildImposesNoOrdering) {
  // Release builds carry no rank state: an inverted order on DISTINCT
  // mutexes runs clean within one thread (the analyzer and the checked
  // build are what reject it repo-wide).
  Mutex done{LockRank::kPoolDone};
  Mutex error{LockRank::kPoolError};
  MutexLock outer(done);
  MutexLock inner(error);
  SUCCEED();
}

#endif  // STRG_DEADLOCK_CHECK_ENABLED

}  // namespace
}  // namespace strg
