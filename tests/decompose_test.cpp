// ctest-labels: unit
#include <gtest/gtest.h>

#include <cmath>

#include "strg/decompose.h"
#include "strg/strg.h"

namespace strg::core {
namespace {

graph::NodeAttr MakeAttr(double size, double gray, double cx, double cy) {
  graph::NodeAttr a;
  a.size = size;
  a.color = {gray, gray, gray};
  a.cx = cx;
  a.cy = cy;
  return a;
}

/// Builds an STRG with a stationary background blob plus one object made of
/// two moving parts (distinct colors, same motion) over `frames` frames.
Strg MakeScene(int frames, double speed = 2.0) {
  Strg strg;
  for (int t = 0; t < frames; ++t) {
    graph::Rag rag;
    int bg = rag.AddNode(MakeAttr(800, 100, 40, 30));
    int part1 = rag.AddNode(MakeAttr(40, 200, 10 + speed * t, 10));
    int part2 = rag.AddNode(MakeAttr(36, 30, 10 + speed * t, 15));
    rag.AddEdge(bg, part1);
    rag.AddEdge(bg, part2);
    rag.AddEdge(part1, part2);
    strg.AppendFrame(std::move(rag));
  }
  return strg;
}

TEST(ExtractOrgs, ChainsFollowTemporalEdges) {
  Strg strg = MakeScene(8);
  auto orgs = ExtractOrgs(strg);
  // Three tracked regions -> three ORGs covering all 8 frames each.
  ASSERT_EQ(orgs.size(), 3u);
  for (const Org& org : orgs) {
    EXPECT_EQ(org.Length(), 8u);
    EXPECT_EQ(org.StartFrame(), 0);
    EXPECT_EQ(org.EndFrame(), 7);
    EXPECT_EQ(org.motion.size(), org.Length() - 1);
  }
}

TEST(ExtractOrgs, EveryNodeBelongsToExactlyOneOrg) {
  Strg strg = MakeScene(6);
  auto orgs = ExtractOrgs(strg);
  size_t covered = 0;
  for (const Org& org : orgs) covered += org.Length();
  EXPECT_EQ(covered, strg.TotalNodes());
}

TEST(Org, VelocityAndDisplacement) {
  Strg strg = MakeScene(8, 3.0);
  auto orgs = ExtractOrgs(strg);
  const Org* mover = nullptr;
  for (const Org& org : orgs) {
    if (org.attrs[0].size < 100 && org.attrs[0].color[0] > 150) mover = &org;
  }
  ASSERT_NE(mover, nullptr);
  EXPECT_NEAR(mover->MeanVelocity(), 3.0, 1e-9);
  EXPECT_NEAR(mover->NetDisplacement(), 21.0, 1e-9);
}

TEST(IsObjectOrg, SeparatesMoversFromBackground) {
  Strg strg = MakeScene(8);
  auto orgs = ExtractOrgs(strg);
  DecomposeParams params;
  int objects = 0, backgrounds = 0;
  for (const Org& org : orgs) {
    if (IsObjectOrg(org, params)) {
      ++objects;
    } else {
      ++backgrounds;
    }
  }
  EXPECT_EQ(objects, 2);      // the two moving parts
  EXPECT_EQ(backgrounds, 1);  // the stationary blob
}

TEST(IsObjectOrg, ShortOrgIsBackground) {
  Strg strg = MakeScene(2, 5.0);
  auto orgs = ExtractOrgs(strg);
  DecomposeParams params;
  params.min_org_length = 4;
  for (const Org& org : orgs) {
    EXPECT_FALSE(IsObjectOrg(org, params));
  }
}

TEST(Decompose, MergesCoMovingPartsIntoOneOg) {
  Strg strg = MakeScene(10);
  Decomposition d = Decompose(strg);
  ASSERT_EQ(d.object_graphs.size(), 1u);
  const Og& og = d.object_graphs[0];
  EXPECT_EQ(og.member_orgs.size(), 2u);
  EXPECT_EQ(og.Length(), 10u);
  // Aggregate size = sum of part sizes.
  EXPECT_NEAR(og.sequence[0].size, 76.0, 1e-9);
  // Aggregate centroid sits between the parts (size-weighted).
  EXPECT_GT(og.sequence[0].cy, 10.0);
  EXPECT_LT(og.sequence[0].cy, 15.0);
}

TEST(Decompose, SeparateObjectsStaySeparate) {
  // Two objects moving in opposite directions never merge.
  Strg strg;
  for (int t = 0; t < 10; ++t) {
    graph::Rag rag;
    int bg = rag.AddNode(MakeAttr(800, 100, 40, 30));
    int right = rag.AddNode(MakeAttr(40, 200, 10.0 + 2 * t, 10));
    int left = rag.AddNode(MakeAttr(40, 30, 70.0 - 2 * t, 50));
    rag.AddEdge(bg, right);
    rag.AddEdge(bg, left);
    strg.AppendFrame(std::move(rag));
  }
  Decomposition d = Decompose(strg);
  EXPECT_EQ(d.object_graphs.size(), 2u);
}

TEST(Decompose, BackgroundGraphKeepsStationaryNodes) {
  Strg strg = MakeScene(10);
  Decomposition d = Decompose(strg);
  EXPECT_EQ(d.background.rag.NumNodes(), 1u);
  EXPECT_NEAR(d.background.rag.node(0).size, 800.0, 1e-9);
}

TEST(Decompose, PaperSizeEquation9Dominates) {
  Strg strg = MakeScene(30);
  Decomposition d = Decompose(strg);
  size_t paper_size = PaperStrgSizeBytes(d, strg.NumFrames());
  // N * size(BG) dominates: at 30 frames the accounted STRG must exceed
  // the OGs alone by ~30 background copies.
  size_t og_bytes = 0;
  for (const Og& og : d.object_graphs) og_bytes += og.SizeBytes();
  EXPECT_EQ(paper_size, og_bytes + 30 * d.background.SizeBytes());
  EXPECT_GT(paper_size, og_bytes);
}

TEST(Decompose, EmptyStrg) {
  Strg strg;
  Decomposition d = Decompose(strg);
  EXPECT_TRUE(d.orgs.empty());
  EXPECT_TRUE(d.object_graphs.empty());
  EXPECT_EQ(d.background.rag.NumNodes(), 0u);
}

TEST(Decompose, OgStartFrameReflectsAppearance) {
  // Object appears at frame 3.
  Strg strg;
  for (int t = 0; t < 12; ++t) {
    graph::Rag rag;
    rag.AddNode(MakeAttr(800, 100, 40, 30));
    if (t >= 3) {
      int obj = rag.AddNode(MakeAttr(40, 200, 10.0 + 2 * (t - 3), 10));
      rag.AddEdge(0, obj);
    }
    strg.AppendFrame(std::move(rag));
  }
  Decomposition d = Decompose(strg);
  ASSERT_EQ(d.object_graphs.size(), 1u);
  EXPECT_EQ(d.object_graphs[0].start_frame, 3);
  EXPECT_EQ(d.object_graphs[0].Length(), 9u);
}

}  // namespace
}  // namespace strg::core
