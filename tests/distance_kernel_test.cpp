// ctest-labels: distance
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "distance/eged.h"
#include "distance/eged_fast.h"
#include "distance/simd/dispatch.h"
#include "index/strg_index.h"
#include "synth/generator.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace strg {
namespace {

using dist::EgedKernelStats;
using dist::EgedLowerBound;
using dist::EgedMetric;
using dist::EgedMetricBounded;
using dist::EgedMetricBoundedSeq;
using dist::EgedMetricFast;
using dist::EgedMetricFlat;
using dist::EgedWorkspace;
using dist::FeatureVec;
using dist::FlatSequence;
using dist::kFeatureDim;
using dist::Sequence;

constexpr double kInf = std::numeric_limits<double>::infinity();

Sequence RandomSequence(Rng* rng, size_t min_len = 0, size_t max_len = 24) {
  size_t len = static_cast<size_t>(rng->UniformInt(
      static_cast<int>(min_len), static_cast<int>(max_len)));
  Sequence s(len);
  FeatureVec cur{};
  for (size_t k = 0; k < kFeatureDim; ++k) cur[k] = rng->Uniform(0.0, 10.0);
  for (size_t i = 0; i < len; ++i) {
    for (size_t k = 0; k < kFeatureDim; ++k) {
      cur[k] += rng->Gaussian(0.0, 0.5);
    }
    s[i] = cur;
  }
  return s;
}

FeatureVec RandomGap(Rng* rng) {
  FeatureVec g{};
  for (size_t k = 0; k < kFeatureDim; ++k) g[k] = rng->Uniform(0.0, 5.0);
  return g;
}

// ---------------------------------------------------------------------------
// Kernel equivalence: the flat kernel is the reference kernel, bit for bit.
// ---------------------------------------------------------------------------

TEST(DistanceKernel, FlatKernelMatchesReferenceExactly) {
  Rng rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    FeatureVec g = trial % 2 == 0 ? FeatureVec{} : RandomGap(&rng);
    Sequence a = RandomSequence(&rng);
    Sequence b = RandomSequence(&rng);
    double ref = EgedMetric(a, b, g);
    // EXPECT_DOUBLE_EQ demands bit-identical values (ULP distance 0 given
    // both are finite) — the fast path must not drift from the reference.
    EXPECT_DOUBLE_EQ(EgedMetricFast(a, b, g), ref);
  }
}

TEST(DistanceKernel, BoundedWithInfiniteTauIsExact) {
  Rng rng(12);
  for (int trial = 0; trial < 300; ++trial) {
    FeatureVec g = RandomGap(&rng);
    Sequence a = RandomSequence(&rng);
    Sequence b = RandomSequence(&rng);
    double ref = EgedMetric(a, b, g);
    EXPECT_DOUBLE_EQ(EgedMetricBoundedSeq(a, b, kInf, g), ref);
  }
}

TEST(DistanceKernel, BoundedHonorsItsContractAtRandomTaus) {
  // Contract: d <= tau  =>  exact d; d > tau  =>  some v in (tau, d].
  Rng rng(13);
  EgedKernelStats stats;
  EgedWorkspace ws;
  for (int trial = 0; trial < 2000; ++trial) {
    FeatureVec g = RandomGap(&rng);
    Sequence a = RandomSequence(&rng);
    Sequence b = RandomSequence(&rng);
    double exact = EgedMetric(a, b, g);
    // Sample taus on both sides of the exact distance, including tiny ones
    // that force the lower-bound cascade to answer.
    double tau = exact * rng.Uniform(0.0, 2.0);
    FlatSequence fa(a, g), fb(b, g);
    double v = EgedMetricBounded(fa, fb, tau, &ws, &stats);
    if (exact <= tau) {
      EXPECT_DOUBLE_EQ(v, exact);
    } else {
      EXPECT_GT(v, tau);
      EXPECT_LE(v, exact);
    }
  }
  // The sweep must actually exercise every outcome of the cascade.
  EXPECT_GT(stats.dp_evals, 0u);
  EXPECT_GT(stats.lb_prunes, 0u);
  EXPECT_GT(stats.early_abandons, 0u);
}

TEST(DistanceKernel, LowerBoundIsAdmissibleOnAThousandPairs) {
  Rng rng(14);
  for (int trial = 0; trial < 1000; ++trial) {
    FeatureVec g = RandomGap(&rng);
    Sequence a = RandomSequence(&rng);
    Sequence b = RandomSequence(&rng);
    FlatSequence fa(a, g), fb(b, g);
    double lb = EgedLowerBound(fa, fb);
    double exact = EgedMetric(a, b, g);
    EXPECT_GE(lb, 0.0);
    EXPECT_LE(lb, exact) << "lower bound exceeds the exact distance";
  }
}

TEST(DistanceKernel, FastKernelPreservesTheMetricAxioms) {
  Rng rng(15);
  FeatureVec g = RandomGap(&rng);
  for (int trial = 0; trial < 50; ++trial) {
    Sequence a = RandomSequence(&rng, 1);
    Sequence b = RandomSequence(&rng, 1);
    Sequence c = RandomSequence(&rng, 1);
    double ab = EgedMetricFast(a, b, g);
    double ac = EgedMetricFast(a, c, g);
    double bc = EgedMetricFast(b, c, g);
    EXPECT_GE(ab, 0.0);
    EXPECT_DOUBLE_EQ(EgedMetricFast(a, a, g), 0.0);
    EXPECT_NEAR(ab, EgedMetricFast(b, a, g), 1e-9);
    EXPECT_LE(ac, ab + bc + 1e-9);
    EXPECT_LE(ab, ac + bc + 1e-9);
    EXPECT_LE(bc, ab + ac + 1e-9);
  }
}

TEST(DistanceKernel, FlatSequenceExposesTheDpsGapAccumulation) {
  Rng rng(16);
  FeatureVec g = RandomGap(&rng);
  Sequence a = RandomSequence(&rng, 1);
  FlatSequence fa(a, g);
  ASSERT_EQ(fa.size(), a.size());
  // gap_mass == EGED_M(a, {}) — the DP's whole-sequence deletion column.
  EXPECT_DOUBLE_EQ(fa.gap_mass(), EgedMetric(a, {}, g));
  // Reassigning in place (scratch reuse) reproduces a fresh build.
  Sequence b = RandomSequence(&rng, 1);
  FlatSequence fb(b, g);
  fa.Assign(b, g);
  EXPECT_EQ(fa.size(), fb.size());
  EXPECT_DOUBLE_EQ(fa.gap_mass(), fb.gap_mass());
}

// ---------------------------------------------------------------------------
// Index integration: the fast query path returns exactly what the reference
// kernel path returns, and the parallel build is deterministic.
// ---------------------------------------------------------------------------

struct Workload {
  std::vector<Sequence> db;
  std::vector<Sequence> queries;
};

Workload MakeWorkload(uint64_t seed = 77) {
  synth::SynthParams params;
  params.items_per_cluster = 6;
  params.noise_pct = 8.0;
  params.seed = seed;
  Workload w;
  w.db = synth::GenerateSyntheticOgs(params).Sequences(synth::SynthScaling());
  params.items_per_cluster = 1;
  params.seed = seed + 1;
  auto q =
      synth::GenerateSyntheticOgs(params).Sequences(synth::SynthScaling());
  w.queries.assign(q.begin(), q.begin() + 6);
  return w;
}

index::StrgIndexParams BaseParams() {
  index::StrgIndexParams params;
  params.num_clusters = 12;
  params.cluster_params.max_iterations = 6;
  return params;
}

TEST(DistanceKernel, FastAndReferenceQueryPathsAgreeBitForBit) {
  Workload w = MakeWorkload();
  index::StrgIndexParams fast_params = BaseParams();
  fast_params.use_fast_kernel = true;
  index::StrgIndexParams ref_params = BaseParams();
  ref_params.use_fast_kernel = false;

  index::StrgIndex fast_idx(fast_params);
  index::StrgIndex ref_idx(ref_params);
  // Two segments so the multi-root scan (worst-of-k carried across roots)
  // is exercised too.
  Workload w2 = MakeWorkload(91);
  fast_idx.AddSegment(core::BackgroundGraph{}, w.db);
  fast_idx.AddSegment(core::BackgroundGraph{}, w2.db);
  ref_idx.AddSegment(core::BackgroundGraph{}, w.db);
  ref_idx.AddSegment(core::BackgroundGraph{}, w2.db);

  for (const Sequence& q : w.queries) {
    auto fast = fast_idx.Knn(q, 5);
    auto ref = ref_idx.Knn(q, 5);
    ASSERT_EQ(fast.hits.size(), ref.hits.size());
    for (size_t i = 0; i < fast.hits.size(); ++i) {
      EXPECT_EQ(fast.hits[i].og_id, ref.hits[i].og_id);
      EXPECT_DOUBLE_EQ(fast.hits[i].distance, ref.hits[i].distance);
    }
    // The fast path must do no more DP work than the reference path, and
    // the sweep as a whole must show the cascade firing.
    EXPECT_LE(fast.distance_computations, ref.distance_computations);
    EXPECT_EQ(ref.lb_prunes, 0u);
    EXPECT_EQ(ref.early_abandons, 0u);

    double radius = ref.hits.empty() ? 1.0 : ref.hits.back().distance;
    auto fast_range = fast_idx.RangeSearch(q, radius);
    auto ref_range = ref_idx.RangeSearch(q, radius);
    ASSERT_EQ(fast_range.hits.size(), ref_range.hits.size());
    for (size_t i = 0; i < fast_range.hits.size(); ++i) {
      EXPECT_EQ(fast_range.hits[i].og_id, ref_range.hits[i].og_id);
      EXPECT_DOUBLE_EQ(fast_range.hits[i].distance,
                       ref_range.hits[i].distance);
    }
  }
}

TEST(DistanceKernel, QueryResultsAreBitwiseInvariantUnderForcedScalarTier) {
  // The dispatch tier must be a pure speed decision: forcing the scalar
  // tier on the same index must reproduce every hit distance bitwise AND
  // every pruning counter exactly (the cascade routes identically).
  namespace simd = dist::simd;
  Workload w = MakeWorkload();
  index::StrgIndexParams params = BaseParams();
  params.use_fast_kernel = true;
  index::StrgIndex idx(params);
  idx.AddSegment(core::BackgroundGraph{}, w.db);

  const simd::Tier saved = simd::ActiveTier();
  for (const Sequence& q : w.queries) {
    ASSERT_TRUE(simd::ForceTier(simd::DetectedTier()));
    auto best = idx.Knn(q, 5);
    double radius = best.hits.empty() ? 1.0 : best.hits.back().distance;
    auto best_range = idx.RangeSearch(q, radius);
    ASSERT_TRUE(simd::ForceTier(simd::Tier::kScalar));
    auto ref = idx.Knn(q, 5);
    auto ref_range = idx.RangeSearch(q, radius);
    simd::ForceTier(saved);

    ASSERT_EQ(best.hits.size(), ref.hits.size());
    for (size_t i = 0; i < best.hits.size(); ++i) {
      EXPECT_EQ(best.hits[i].og_id, ref.hits[i].og_id);
      uint64_t xb = 0, yb = 0;
      std::memcpy(&xb, &best.hits[i].distance, sizeof(xb));
      std::memcpy(&yb, &ref.hits[i].distance, sizeof(yb));
      EXPECT_EQ(xb, yb) << "kNN distance drifted across tiers";
    }
    EXPECT_EQ(best.distance_computations, ref.distance_computations);
    EXPECT_EQ(best.lb_prunes, ref.lb_prunes);
    EXPECT_EQ(best.early_abandons, ref.early_abandons);

    ASSERT_EQ(best_range.hits.size(), ref_range.hits.size());
    for (size_t i = 0; i < best_range.hits.size(); ++i) {
      EXPECT_EQ(best_range.hits[i].og_id, ref_range.hits[i].og_id);
      EXPECT_DOUBLE_EQ(best_range.hits[i].distance,
                       ref_range.hits[i].distance);
    }
  }
  simd::ForceTier(saved);
}

TEST(DistanceKernel, ReportedKnnDistancesAreTrueMetricDistances) {
  Workload w = MakeWorkload();
  index::StrgIndex idx(BaseParams());
  idx.AddSegment(core::BackgroundGraph{}, w.db);
  for (const Sequence& q : w.queries) {
    auto result = idx.Knn(q, 5);
    for (const auto& h : result.hits) {
      // Early abandoning may only reject candidates, never distort the
      // distance of anything that makes the answer.
      EXPECT_DOUBLE_EQ(h.distance, EgedMetric(q, w.db[h.og_id]));
    }
  }
}

TEST(DistanceKernel, ParallelBuildIsDeterministic) {
  Workload w = MakeWorkload();
  ThreadPool pool(4);

  index::StrgIndexParams serial_params = BaseParams();
  serial_params.cluster_params.restarts = 3;
  index::StrgIndexParams pooled_params = serial_params;
  pooled_params.pool = &pool;
  pooled_params.cluster_params.pool = &pool;

  index::StrgIndex serial_idx(serial_params);
  index::StrgIndex pooled_idx(pooled_params);
  int sroot = serial_idx.AddSegment(core::BackgroundGraph{}, w.db);
  int proot = pooled_idx.AddSegment(core::BackgroundGraph{}, w.db);
  ASSERT_EQ(sroot, proot);

  ASSERT_EQ(serial_idx.NumClusters(), pooled_idx.NumClusters());
  ASSERT_EQ(serial_idx.NumIndexedOgs(), pooled_idx.NumIndexedOgs());
  for (size_t c = 0; c < serial_idx.NumClusters(); ++c) {
    auto serial_keys = serial_idx.LeafKeys(sroot, c);
    auto pooled_keys = pooled_idx.LeafKeys(proot, c);
    ASSERT_EQ(serial_keys.size(), pooled_keys.size());
    for (size_t i = 0; i < serial_keys.size(); ++i) {
      EXPECT_DOUBLE_EQ(serial_keys[i], pooled_keys[i]);
    }
  }
  for (const Sequence& q : w.queries) {
    auto a = serial_idx.Knn(q, 5);
    auto b = pooled_idx.Knn(q, 5);
    ASSERT_EQ(a.hits.size(), b.hits.size());
    for (size_t i = 0; i < a.hits.size(); ++i) {
      EXPECT_EQ(a.hits[i].og_id, b.hits[i].og_id);
      EXPECT_DOUBLE_EQ(a.hits[i].distance, b.hits[i].distance);
    }
  }
}

TEST(DistanceKernel, PerQueryCountersAreStableUnderConcurrentLoad) {
  // The counter-race fix: each query counts its own work locally, so the
  // same query returns the same distance_computations no matter how many
  // other queries run at the same time.
  Workload w = MakeWorkload();
  index::StrgIndex idx(BaseParams());
  idx.AddSegment(core::BackgroundGraph{}, w.db);

  std::vector<index::KnnResult> expected;
  for (const Sequence& q : w.queries) expected.push_back(idx.Knn(q, 5));

  constexpr int kThreads = 4;
  constexpr int kRepeats = 25;
  std::vector<std::vector<std::string>> failures(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < kRepeats; ++rep) {
        for (size_t qi = 0; qi < w.queries.size(); ++qi) {
          auto result = idx.Knn(w.queries[qi], 5);
          if (result.distance_computations !=
                  expected[qi].distance_computations ||
              result.lb_prunes != expected[qi].lb_prunes ||
              result.early_abandons != expected[qi].early_abandons) {
            failures[t].push_back("query " + std::to_string(qi) +
                                  " counters drifted under load");
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& per_thread : failures) {
    for (const auto& f : per_thread) ADD_FAILURE() << f;
  }
}

TEST(DistanceKernel, GlobalCounterAccumulatesAllQueryWork) {
  Workload w = MakeWorkload();
  index::StrgIndex idx(BaseParams());
  idx.AddSegment(core::BackgroundGraph{}, w.db);
  idx.ResetDistanceCount();
  size_t local_total = 0;
  for (const Sequence& q : w.queries) {
    local_total += idx.Knn(q, 5).distance_computations;
  }
  EXPECT_EQ(idx.TotalDistanceComputations(), local_total);
}

}  // namespace
}  // namespace strg
