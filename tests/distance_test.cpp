// ctest-labels: unit
#include <gtest/gtest.h>

#include <cmath>

#include "distance/dtw.h"
#include "distance/eged.h"
#include "distance/lcs.h"
#include "distance/lp.h"
#include "distance/sequence.h"

namespace strg::dist {
namespace {

/// 1-D helper: puts scalar values in feature slot 0, zeros elsewhere — this
/// makes Definition 9's worked example directly checkable.
Sequence Seq(std::initializer_list<double> values) {
  Sequence s;
  for (double v : values) {
    FeatureVec f{};
    f[0] = v;
    s.push_back(f);
  }
  return s;
}

TEST(EgedMetric, PaperWorkedExample) {
  // Section 3.1: OGr = {0}, OGs = {1,1}, OGt = {2,2,3}, g = 0.
  Sequence r = Seq({0}), s = Seq({1, 1}), t = Seq({2, 2, 3});
  EXPECT_DOUBLE_EQ(EgedMetric(r, t), 7.0);
  EXPECT_DOUBLE_EQ(EgedMetric(r, s), 2.0);
  EXPECT_DOUBLE_EQ(EgedMetric(s, t), 5.0);
  // Triangle inequality holds: 7 <= 2 + 5.
  EXPECT_LE(EgedMetric(r, t), EgedMetric(r, s) + EgedMetric(s, t));
}

TEST(EgedNonMetric, PaperWorkedExampleValues) {
  // Section 3.1's example, exactly: OGr = {0}, OGs = {1,1}, OGt = {2,2,3}
  // give EGED(r,t) = 7, EGED(r,s) = 2, EGED(s,t) = 4 with the non-metric
  // gap, hence the triangle violation 7 > 2 + 4.
  Sequence r = Seq({0}), s = Seq({1, 1}), t = Seq({2, 2, 3});
  EXPECT_DOUBLE_EQ(EgedNonMetric(r, t), 7.0);
  EXPECT_DOUBLE_EQ(EgedNonMetric(r, s), 2.0);
  EXPECT_DOUBLE_EQ(EgedNonMetric(s, t), 4.0);
  EXPECT_GT(EgedNonMetric(r, t),
            EgedNonMetric(r, s) + EgedNonMetric(s, t));
}

TEST(EgedNonMetric, RepeatedNodesDeleteCheaply) {
  // A node replicated in one sequence is consumed against the other
  // sequence's interpolated value for free — the local-time-shifting
  // behaviour the paper wants from the g_i = (v_{i-1}+v_i)/2 gap.
  Sequence a = Seq({3, 3, 3});
  Sequence b = Seq({3});
  EXPECT_DOUBLE_EQ(EgedNonMetric(a, b), 0.0);
}

TEST(EgedMetric, IdenticalSequencesAreZero) {
  Sequence a = Seq({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(EgedMetric(a, a), 0.0);
  EXPECT_DOUBLE_EQ(EgedNonMetric(a, a), 0.0);
}

TEST(EgedMetric, EmptyAgainstSequenceIsGapCost) {
  // Theorem 2 discussion: m = 0 / n = 0 measure from the fixed point g.
  Sequence empty;
  Sequence a = Seq({3, 4});
  EXPECT_DOUBLE_EQ(EgedMetric(empty, a), 7.0);
  EXPECT_DOUBLE_EQ(EgedMetric(a, empty), 7.0);
  EXPECT_DOUBLE_EQ(EgedMetric(empty, empty), 0.0);
}

TEST(EgedNonMetric, RejectsEmpty) {
  Sequence a = Seq({1});
  EXPECT_THROW(EgedNonMetric({}, a), std::invalid_argument);
  EXPECT_THROW(EgedNonMetric(a, {}), std::invalid_argument);
}

TEST(EgedMetric, CustomGapConstant) {
  FeatureVec g{};
  g[0] = 2.0;
  // Deleting value 2 against g=2 is free.
  Sequence a = Seq({2}), b = Seq({2, 2});
  EXPECT_DOUBLE_EQ(EgedMetric(a, b, g), 0.0);
}

TEST(EgedNonMetric, HandlesLocalTimeShifting) {
  // A sequence vs its time-dilated copy: non-metric EGED stays small
  // compared to a genuinely different sequence.
  Sequence a = Seq({0, 1, 2, 3, 4, 5, 6, 7});
  Sequence dilated = Seq({0, 1, 1, 2, 3, 4, 5, 5, 6, 7});
  Sequence other = Seq({7, 6, 5, 4, 3, 2, 1, 0});
  EXPECT_LT(EgedNonMetric(a, dilated), EgedNonMetric(a, other));
}

TEST(Dtw, ClassicProperties) {
  Sequence a = Seq({1, 2, 3});
  EXPECT_DOUBLE_EQ(Dtw(a, a), 0.0);
  // DTW absorbs time dilation entirely.
  EXPECT_DOUBLE_EQ(Dtw(Seq({1, 2, 3}), Seq({1, 1, 2, 2, 3, 3})), 0.0);
  EXPECT_GT(Dtw(Seq({1, 2, 3}), Seq({4, 5, 6})), 0.0);
  EXPECT_THROW(Dtw({}, a), std::invalid_argument);
}

TEST(Dtw, SymmetricOnExamples) {
  Sequence a = Seq({1, 5, 2, 8}), b = Seq({2, 2, 7});
  EXPECT_DOUBLE_EQ(Dtw(a, b), Dtw(b, a));
}

TEST(Lcs, LengthAndDistance) {
  Sequence a = Seq({1, 2, 3, 4});
  Sequence b = Seq({1, 9, 3, 9});
  EXPECT_EQ(LcsLength(a, b, 0.5), 2u);
  EXPECT_DOUBLE_EQ(LcsDistanceValue(a, b, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(LcsDistanceValue(a, a, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(LcsDistanceValue(a, Seq({100, 101}), 0.5), 1.0);
}

TEST(Lcs, EpsilonControlsMatching) {
  Sequence a = Seq({1, 2, 3});
  Sequence b = Seq({1.4, 2.4, 3.4});
  EXPECT_EQ(LcsLength(a, b, 0.1), 0u);
  EXPECT_EQ(LcsLength(a, b, 0.5), 3u);
}

TEST(Lp, EuclideanOnEqualLengths) {
  Sequence a = Seq({0, 0}), b = Seq({3, 4});
  EXPECT_DOUBLE_EQ(LpDistanceValue(a, b, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(LpDistanceValue(a, b, 1.0), 7.0);
}

TEST(Lp, ResamplesUnequalLengths) {
  Sequence a = Seq({0, 1, 2, 3, 4});
  Sequence b = Seq({0, 2, 4});
  // After resampling a to length 3, the sequences align exactly.
  EXPECT_NEAR(LpDistanceValue(a, b, 2.0), 0.0, 1e-12);
}

TEST(Lp, RejectsBadP) {
  Sequence a = Seq({1});
  EXPECT_THROW(LpDistanceValue(a, a, 0.5), std::invalid_argument);
}

TEST(Sequence, ResampleEndpointsAndLength) {
  Sequence a = Seq({0, 10});
  Sequence r = Resample(a, 5);
  ASSERT_EQ(r.size(), 5u);
  EXPECT_DOUBLE_EQ(r.front()[0], 0.0);
  EXPECT_DOUBLE_EQ(r.back()[0], 10.0);
  EXPECT_DOUBLE_EQ(r[2][0], 5.0);
}

TEST(Sequence, ResampleDegenerateCases) {
  Sequence single = Seq({7});
  Sequence r = Resample(single, 4);
  for (const auto& v : r) EXPECT_DOUBLE_EQ(v[0], 7.0);
  Sequence down = Resample(Seq({1, 2, 3}), 1);
  EXPECT_EQ(down.size(), 1u);
  EXPECT_THROW(Resample({}, 3), std::invalid_argument);
  EXPECT_THROW(Resample(single, 0), std::invalid_argument);
}

TEST(Sequence, FeatureScalingMapsAttributes) {
  FeatureScaling s;
  s.frame_width = 100;
  s.frame_height = 100;
  graph::NodeAttr attr;
  attr.size = 100;  // 1% of the 10000-px frame
  attr.color = {255, 0, 0};
  attr.cx = 50;
  attr.cy = 100;
  FeatureVec v = s.Map(attr);
  EXPECT_NEAR(v[0], 10.0 * 0.1, 1e-12);  // sqrt(0.01) = 0.1
  EXPECT_NEAR(v[1], s.color_weight * 10.0, 1e-12);
  EXPECT_NEAR(v[2], 0.0, 1e-12);
  EXPECT_NEAR(v[4], 5.0, 1e-12);
  EXPECT_NEAR(v[5], 10.0, 1e-12);
}

TEST(CountingDistance, CountsAndDelegates) {
  EgedMetricDistance metric;
  CountingDistance counted(&metric);
  Sequence a = Seq({1, 2}), b = Seq({3});
  double direct = metric(a, b);
  EXPECT_DOUBLE_EQ(counted(a, b), direct);
  counted(a, b);
  EXPECT_EQ(counted.count(), 2u);
  counted.Reset();
  EXPECT_EQ(counted.count(), 0u);
  EXPECT_EQ(counted.Name(), "EGED_M");
}

}  // namespace
}  // namespace strg::dist
