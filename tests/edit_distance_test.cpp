// ctest-labels: unit
#include <gtest/gtest.h>

#include "graph/edit_distance.h"

namespace strg::graph {
namespace {

NodeAttr MakeAttr(double size, double gray, double cx, double cy) {
  NodeAttr a;
  a.size = size;
  a.color = {gray, gray, gray};
  a.cx = cx;
  a.cy = cy;
  return a;
}

Rag Triangle(double shift = 0.0) {
  Rag g;
  int a = g.AddNode(MakeAttr(10, 100, 0 + shift, 0));
  int b = g.AddNode(MakeAttr(20, 100, 6 + shift, 0));
  int c = g.AddNode(MakeAttr(30, 100, 0 + shift, 6));
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  g.AddEdge(a, c);
  return g;
}

TEST(GraphEditDistance, IdenticalGraphsAreZero) {
  Rag g = Triangle();
  EXPECT_DOUBLE_EQ(ApproxGraphEditDistance(g, g), 0.0);
}

TEST(GraphEditDistance, EmptyGraphs) {
  Rag empty;
  EXPECT_DOUBLE_EQ(ApproxGraphEditDistance(empty, empty), 0.0);
  // Deleting a whole triangle: 3 node deletions + edge penalties.
  double d = ApproxGraphEditDistance(Triangle(), empty);
  GedCosts costs;
  double expected = 3 * costs.node_insert_delete +
                    costs.edge_mismatch * 6;  // degree sum = 2*edges
  EXPECT_DOUBLE_EQ(d, expected);
}

TEST(GraphEditDistance, SymmetricForInsertDelete) {
  Rag empty;
  Rag g = Triangle();
  EXPECT_DOUBLE_EQ(ApproxGraphEditDistance(g, empty),
                   ApproxGraphEditDistance(empty, g));
}

TEST(GraphEditDistance, GrowsWithAttributeGap) {
  Rag g = Triangle();
  double near = ApproxGraphEditDistance(g, Triangle(2.0));
  double far = ApproxGraphEditDistance(g, Triangle(40.0));
  EXPECT_GT(far, near);
  EXPECT_GT(near, 0.0);
}

TEST(GraphEditDistance, ExtraNodeCostsOneDeletion) {
  Rag g = Triangle();
  Rag h = Triangle();
  h.AddNode(MakeAttr(15, 100, 50, 50));  // isolated extra node
  GedCosts costs;
  double d = ApproxGraphEditDistance(g, h, costs);
  EXPECT_NEAR(d, costs.node_insert_delete, 1e-9);
}

TEST(GraphEditDistance, DegreeMismatchPenalized) {
  // Same nodes; one graph has an edge, the other does not.
  Rag g, h;
  for (int i = 0; i < 2; ++i) {
    g.AddNode(MakeAttr(10, 100, i * 6.0, 0));
    h.AddNode(MakeAttr(10, 100, i * 6.0, 0));
  }
  g.AddEdge(0, 1);
  GedCosts costs;
  double d = ApproxGraphEditDistance(g, h, costs);
  EXPECT_NEAR(d, costs.edge_mismatch * 2, 1e-9);  // both endpoints differ
}

TEST(GraphEditDistance, SubstitutionCappedAtDeletePlusInsert) {
  GedCosts costs;
  NodeAttr a = MakeAttr(10, 0, 0, 0);
  NodeAttr b = MakeAttr(100000, 255, 1000, 1000);
  EXPECT_LE(NodeSubstitutionCost(a, b, costs),
            2.0 * costs.node_insert_delete + 1e-12);
}

}  // namespace
}  // namespace strg::graph
