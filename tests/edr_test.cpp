// ctest-labels: unit
#include <gtest/gtest.h>

#include "distance/edr.h"
#include "util/random.h"

namespace strg::dist {
namespace {

Sequence Seq(std::initializer_list<double> values) {
  Sequence s;
  for (double v : values) {
    FeatureVec f{};
    f[0] = v;
    s.push_back(f);
  }
  return s;
}

TEST(Edr, IdenticalSequencesAreZero) {
  Sequence a = Seq({1, 2, 3});
  EXPECT_DOUBLE_EQ(Edr(a, a, 0.5), 0.0);
}

TEST(Edr, CountsEditOperations) {
  // One substitution.
  EXPECT_DOUBLE_EQ(Edr(Seq({1, 2, 3}), Seq({1, 9, 3}), 0.5), 1.0);
  // One insertion.
  EXPECT_DOUBLE_EQ(Edr(Seq({1, 2, 3}), Seq({1, 2, 2.9, 3}), 0.5), 1.0);
  // Completely different: every element must be edited.
  EXPECT_DOUBLE_EQ(Edr(Seq({1, 2}), Seq({50, 60, 70}), 0.5), 3.0);
}

TEST(Edr, EpsilonControlsMatching) {
  Sequence a = Seq({1, 2, 3});
  Sequence b = Seq({1.4, 2.4, 3.4});
  EXPECT_DOUBLE_EQ(Edr(a, b, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Edr(a, b, 0.1), 3.0);
}

TEST(Edr, OutlierCostsAtMostOne) {
  Sequence clean = Seq({1, 2, 3, 4, 5});
  Sequence spiked = Seq({1, 2, 500, 4, 5});
  EXPECT_DOUBLE_EQ(Edr(clean, spiked, 0.5), 1.0);
}

TEST(Edr, NormalizedInUnitRange) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Sequence a(static_cast<size_t>(rng.UniformInt(1, 15)));
    Sequence b(static_cast<size_t>(rng.UniformInt(1, 15)));
    for (auto& v : a) v[0] = rng.Uniform(0, 10);
    for (auto& v : b) v[0] = rng.Uniform(0, 10);
    double d = EdrNormalized(a, b, 1.0);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(Edr, SymmetricAndRejectsEmpty) {
  Sequence a = Seq({1, 5, 2}), b = Seq({2, 2});
  EXPECT_DOUBLE_EQ(Edr(a, b, 0.5), Edr(b, a, 0.5));
  EXPECT_THROW(Edr({}, a, 0.5), std::invalid_argument);
}

TEST(EdrDistance, InterfaceWorks) {
  EdrDistance d(0.5);
  EXPECT_EQ(d.Name(), "EDR");
  EXPECT_DOUBLE_EQ(d(Seq({1}), Seq({1})), 0.0);
}

}  // namespace
}  // namespace strg::dist
