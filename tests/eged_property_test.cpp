// ctest-labels: unit
#include <gtest/gtest.h>

#include "distance/dtw.h"
#include "distance/eged.h"
#include "distance/lcs.h"
#include "distance/lp.h"
#include "util/random.h"

namespace strg::dist {
namespace {

/// Random walk sequence resembling an OG feature series.
Sequence RandomSequence(Rng* rng, size_t min_len = 2, size_t max_len = 24) {
  size_t len = static_cast<size_t>(rng->UniformInt(
      static_cast<int>(min_len), static_cast<int>(max_len)));
  Sequence s(len);
  FeatureVec cur{};
  for (size_t k = 0; k < kFeatureDim; ++k) cur[k] = rng->Uniform(0.0, 10.0);
  for (size_t i = 0; i < len; ++i) {
    for (size_t k = 0; k < kFeatureDim; ++k) {
      cur[k] += rng->Gaussian(0.0, 0.5);
    }
    s[i] = cur;
  }
  return s;
}

/// Property-style sweep: each seed draws fresh random triples and checks
/// the metric axioms of EGED_M (Theorem 2).
class MetricPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricPropertyTest, EgedMetricSatisfiesMetricAxioms) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    Sequence a = RandomSequence(&rng);
    Sequence b = RandomSequence(&rng);
    Sequence c = RandomSequence(&rng);
    double ab = EgedMetric(a, b);
    double ba = EgedMetric(b, a);
    double ac = EgedMetric(a, c);
    double bc = EgedMetric(b, c);
    // Non-negativity, reflexivity, symmetry.
    EXPECT_GE(ab, 0.0);
    EXPECT_DOUBLE_EQ(EgedMetric(a, a), 0.0);
    EXPECT_NEAR(ab, ba, 1e-9);
    // Triangle inequality (Theorem 2).
    EXPECT_LE(ac, ab + bc + 1e-9);
    EXPECT_LE(ab, ac + bc + 1e-9);
    EXPECT_LE(bc, ab + ac + 1e-9);
  }
}

TEST_P(MetricPropertyTest, EgedMetricTriangleWithCustomGap) {
  Rng rng(GetParam() ^ 0xABCD);
  FeatureVec g{};
  for (size_t k = 0; k < kFeatureDim; ++k) g[k] = rng.Uniform(0.0, 5.0);
  for (int trial = 0; trial < 15; ++trial) {
    Sequence a = RandomSequence(&rng);
    Sequence b = RandomSequence(&rng);
    Sequence c = RandomSequence(&rng);
    EXPECT_LE(EgedMetric(a, c, g),
              EgedMetric(a, b, g) + EgedMetric(b, c, g) + 1e-9);
  }
}

TEST_P(MetricPropertyTest, NonMetricEgedSymmetricAndReflexive) {
  Rng rng(GetParam() ^ 0x1234);
  for (int trial = 0; trial < 25; ++trial) {
    Sequence a = RandomSequence(&rng);
    Sequence b = RandomSequence(&rng);
    EXPECT_GE(EgedNonMetric(a, b), 0.0);
    EXPECT_NEAR(EgedNonMetric(a, b), EgedNonMetric(b, a), 1e-9);
    EXPECT_DOUBLE_EQ(EgedNonMetric(a, a), 0.0);
  }
}

TEST_P(MetricPropertyTest, MetricEgedUpperBoundsAreSane) {
  // EGED_M(a, b) can never exceed deleting everything: EGED_M(a, {}) +
  // EGED_M({}, b).
  Rng rng(GetParam() ^ 0x77);
  for (int trial = 0; trial < 25; ++trial) {
    Sequence a = RandomSequence(&rng);
    Sequence b = RandomSequence(&rng);
    double all_gap = EgedMetric(a, {}) + EgedMetric({}, b);
    EXPECT_LE(EgedMetric(a, b), all_gap + 1e-9);
  }
}

TEST_P(MetricPropertyTest, DtwSymmetricNonNegative) {
  Rng rng(GetParam() ^ 0xD7);
  for (int trial = 0; trial < 25; ++trial) {
    Sequence a = RandomSequence(&rng);
    Sequence b = RandomSequence(&rng);
    EXPECT_GE(Dtw(a, b), 0.0);
    EXPECT_NEAR(Dtw(a, b), Dtw(b, a), 1e-9);
    EXPECT_DOUBLE_EQ(Dtw(a, a), 0.0);
  }
}

TEST_P(MetricPropertyTest, LcsDistanceBoundedInUnitInterval) {
  Rng rng(GetParam() ^ 0x1C5);
  for (int trial = 0; trial < 25; ++trial) {
    Sequence a = RandomSequence(&rng);
    Sequence b = RandomSequence(&rng);
    double d = LcsDistanceValue(a, b, 1.0);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
    EXPECT_DOUBLE_EQ(LcsDistanceValue(a, a, 1.0), 0.0);
  }
}

TEST_P(MetricPropertyTest, ResamplePreservesEndpoints) {
  Rng rng(GetParam() ^ 0x9A);
  for (int trial = 0; trial < 25; ++trial) {
    Sequence a = RandomSequence(&rng, 2, 30);
    size_t len = static_cast<size_t>(rng.UniformInt(2, 40));
    Sequence r = Resample(a, len);
    ASSERT_EQ(r.size(), len);
    for (size_t k = 0; k < kFeatureDim; ++k) {
      EXPECT_NEAR(r.front()[k], a.front()[k], 1e-9);
      EXPECT_NEAR(r.back()[k], a.back()[k], 1e-9);
    }
  }
}

TEST_P(MetricPropertyTest, ResampleToSameLengthIsIdentity) {
  Rng rng(GetParam() ^ 0x5F);
  Sequence a = RandomSequence(&rng, 3, 20);
  Sequence r = Resample(a, a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t k = 0; k < kFeatureDim; ++k) {
      EXPECT_NEAR(r[i][k], a[i][k], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace strg::dist
