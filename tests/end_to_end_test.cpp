// ctest-labels: integration
#include <gtest/gtest.h>

#include "core/persistence.h"
#include "core/video_database.h"
#include "video/renderer.h"
#include "video/scenes.h"

namespace strg::api {
namespace {

/// The full product path in one test: a two-shot frame stream (lab scene
/// cut to traffic scene) -> shot detection -> per-shot STRG pipelines ->
/// catalog persistence round-trip -> database rebuild -> background-routed
/// retrieval.
TEST(EndToEnd, MultiShotPersistenceAndRetrieval) {
  video::SceneParams sp;
  sp.num_objects = 4;
  sp.object_lifetime = 16;
  sp.spawn_gap = 20;
  sp.noise_stddev = 0.0;
  video::SceneSpec lab = video::MakeLabScene(sp);
  sp.height = 100;
  sp.seed = 33;
  video::SceneSpec traffic = video::MakeTrafficScene(sp);

  // NB: shots must share frame dimensions in one stream; render the lab
  // scene at the traffic height too.
  lab.height = 100;
  std::vector<video::Frame> frames;
  for (int t = 0; t < lab.num_frames; ++t) {
    frames.push_back(video::RenderFrame(lab, t));
  }
  for (int t = 0; t < traffic.num_frames; ++t) {
    frames.push_back(video::RenderFrame(traffic, t));
  }

  PipelineParams pp;
  pp.segmenter.use_mean_shift = false;
  auto segments = ProcessFrames(frames, pp);
  ASSERT_EQ(segments.size(), 2u) << "shot detector must find the scene cut";
  ASSERT_GE(segments[0].decomposition.object_graphs.size(), 2u);
  ASSERT_GE(segments[1].decomposition.object_graphs.size(), 2u);

  // Persist and reload.
  storage::Catalog catalog;
  catalog.AddSegment(ToCatalogSegment("shot-0", segments[0]));
  catalog.AddSegment(ToCatalogSegment("shot-1", segments[1]));
  storage::Catalog reloaded =
      storage::Catalog::TryDeserialize(catalog.Serialize()).value();

  index::StrgIndexParams ip;
  ip.num_clusters = 2;
  ip.cluster_params.max_iterations = 6;
  VideoDatabase db = RestoreVideoDatabase(reloaded, ip);
  EXPECT_EQ(db.NumVideos(), 2u);

  // Query with the traffic shot's background: hits must resolve to shot-1.
  const core::Og& probe = segments[1].decomposition.object_graphs[0];
  dist::Sequence probe_seq =
      dist::OgToSequence(probe, segments[1].Scaling());
  auto routed =
      db.index().Knn(probe_seq, 3, &segments[1].decomposition.background);
  ASSERT_FALSE(routed.hits.empty());
  EXPECT_NEAR(routed.hits[0].distance, 0.0, 1e-9);
  auto all = db.FindSimilar(probe_seq, 3);
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all[0].video, "shot-1");

  // Temporal window query on the reloaded database.
  auto active = db.FindActive("shot-0", 0, 5);
  EXPECT_FALSE(active.empty());
}

}  // namespace
}  // namespace strg::api
