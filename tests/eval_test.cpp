// ctest-labels: unit
#include <gtest/gtest.h>

#include "eval/retrieval_metrics.h"
#include "index/strg_index.h"
#include "synth/generator.h"

namespace strg::eval {
namespace {

TEST(RetrievalMetrics, PrecisionAtK) {
  std::vector<bool> rel{true, false, true, true, false};
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, 4), 0.75);
  // k beyond the list: missing ranks count as misses.
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, 10), 0.3);
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, 0), 0.0);
}

TEST(RetrievalMetrics, RecallAtK) {
  std::vector<bool> rel{true, false, true};
  EXPECT_DOUBLE_EQ(RecallAtK(rel, 1, 4), 0.25);
  EXPECT_DOUBLE_EQ(RecallAtK(rel, 3, 4), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(rel, 3, 0), 0.0);
}

TEST(RetrievalMetrics, AveragePrecisionWorkedExample) {
  // Relevant at ranks 1 and 3 of 2 total relevant:
  // AP = (1/1 + 2/3) / 2 = 5/6.
  std::vector<bool> rel{true, false, true};
  EXPECT_NEAR(AveragePrecision(rel, 2), 5.0 / 6.0, 1e-12);
  // Perfect ranking.
  EXPECT_DOUBLE_EQ(AveragePrecision({true, true}, 2), 1.0);
  // Nothing relevant retrieved.
  EXPECT_DOUBLE_EQ(AveragePrecision({false, false}, 2), 0.0);
}

TEST(RetrievalMetrics, MeanAveragePrecision) {
  std::vector<std::vector<bool>> rels{{true}, {false, true}};
  std::vector<size_t> totals{1, 1};
  // AP1 = 1, AP2 = 1/2 -> MAP = 0.75.
  EXPECT_DOUBLE_EQ(MeanAveragePrecision(rels, totals), 0.75);
  EXPECT_THROW(MeanAveragePrecision(rels, {1}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(MeanAveragePrecision({}, {}), 0.0);
}

TEST(RetrievalMetrics, RelevanceMask) {
  auto mask = RelevanceMask({3, 1, 3, 2}, 3);
  EXPECT_EQ(mask, (std::vector<bool>{true, false, true, false}));
}

TEST(IndexStats, ReflectStructure) {
  synth::SynthParams sp;
  sp.items_per_cluster = 3;
  sp.seed = 9;
  auto db = synth::GenerateSyntheticOgs(sp).Sequences(synth::SynthScaling());
  index::StrgIndexParams params;
  params.num_clusters = 8;
  params.cluster_params.max_iterations = 5;
  index::StrgIndex idx(params);
  idx.AddSegment(core::BackgroundGraph{}, db);

  auto stats = idx.ComputeStats();
  EXPECT_EQ(stats.segments, 1u);
  EXPECT_EQ(stats.clusters, idx.NumClusters());
  EXPECT_EQ(stats.ogs, db.size());
  EXPECT_LE(stats.min_leaf, stats.max_leaf);
  EXPECT_NEAR(stats.mean_leaf,
              static_cast<double>(stats.ogs) / stats.clusters, 1e-9);
  EXPECT_GT(stats.mean_covering_radius, 0.0);
  EXPECT_GE(stats.max_covering_radius, stats.mean_covering_radius);
}

TEST(IndexStats, EmptyIndex) {
  index::StrgIndex idx;
  auto stats = idx.ComputeStats();
  EXPECT_EQ(stats.segments, 0u);
  EXPECT_EQ(stats.clusters, 0u);
  EXPECT_EQ(stats.ogs, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_leaf, 0.0);
}

}  // namespace
}  // namespace strg::eval
