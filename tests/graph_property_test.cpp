// ctest-labels: unit
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/common_subgraph.h"
#include "graph/edit_distance.h"
#include "graph/isomorphism.h"
#include "util/random.h"

namespace strg::graph {
namespace {

/// Random attributed graph with well-separated node attributes (so the
/// tolerance matcher behaves like exact matching on distinct nodes).
Rag RandomGraph(Rng* rng, size_t nodes, double edge_prob) {
  Rag g;
  for (size_t i = 0; i < nodes; ++i) {
    NodeAttr a;
    a.size = 100.0 + 200.0 * static_cast<double>(i);  // far apart in size
    a.color = {rng->Uniform(0, 255), rng->Uniform(0, 255),
               rng->Uniform(0, 255)};
    a.cx = rng->Uniform(0, 10);  // keep positions close: size decides
    a.cy = rng->Uniform(0, 10);
    g.AddNode(a);
  }
  for (size_t i = 0; i < nodes; ++i) {
    for (size_t j = i + 1; j < nodes; ++j) {
      if (rng->Bernoulli(edge_prob)) {
        g.AddEdge(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return g;
}

/// Relabels nodes by a random permutation (an isomorphic copy).
Rag Permuted(const Rag& g, Rng* rng) {
  std::vector<int> perm(g.NumNodes());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int>(i);
  std::vector<int> shuffled = perm;
  rng->Shuffle(&shuffled);
  Rag out;
  std::vector<int> position(g.NumNodes());
  for (size_t i = 0; i < shuffled.size(); ++i) {
    position[static_cast<size_t>(shuffled[i])] =
        out.AddNode(g.node(shuffled[i]));
  }
  for (size_t v = 0; v < g.NumNodes(); ++v) {
    for (const Rag::Edge& e : g.Neighbors(static_cast<int>(v))) {
      if (e.to > static_cast<int>(v)) {
        out.AddEdge(position[v], position[static_cast<size_t>(e.to)], e.attr);
      }
    }
  }
  return out;
}

AttrTolerance LooseColorTol() {
  AttrTolerance tol;
  tol.color = 1000.0;  // colors are random; size identifies nodes
  tol.size_ratio = 0.2;
  tol.position = 1000.0;
  tol.edge_distance = 1000.0;
  tol.edge_orientation = 10.0;
  return tol;
}

class GraphPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphPropertyTest, PermutedCopyIsIsomorphic) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    Rag g = RandomGraph(&rng, static_cast<size_t>(rng.UniformInt(2, 7)), 0.4);
    Rag h = Permuted(g, &rng);
    EXPECT_TRUE(AreIsomorphic(g, h, LooseColorTol()));
    EXPECT_TRUE(IsSubgraphIsomorphic(g, h, LooseColorTol()));
  }
}

TEST_P(GraphPropertyTest, McsOfIsomorphicGraphsIsFullSize) {
  Rng rng(GetParam() ^ 0xA1);
  for (int trial = 0; trial < 5; ++trial) {
    Rag g = RandomGraph(&rng, static_cast<size_t>(rng.UniformInt(2, 6)), 0.4);
    Rag h = Permuted(g, &rng);
    EXPECT_EQ(MostCommonSubgraphSize(g, h, LooseColorTol()), g.NumNodes());
  }
}

TEST_P(GraphPropertyTest, McsBoundedByMinNodeCount) {
  Rng rng(GetParam() ^ 0xB2);
  Rag g = RandomGraph(&rng, 5, 0.5);
  Rag h = RandomGraph(&rng, 3, 0.5);
  size_t mcs = MostCommonSubgraphSize(g, h, LooseColorTol());
  EXPECT_LE(mcs, 3u);
}

TEST_P(GraphPropertyTest, GedZeroIffSameForPermutedCopies) {
  Rng rng(GetParam() ^ 0xC3);
  Rag g = RandomGraph(&rng, static_cast<size_t>(rng.UniformInt(3, 6)), 0.4);
  // Bipartite-approximate GED of identical graphs is exactly 0; a permuted
  // copy keeps node multiset + degrees, so assignment cost stays 0 too
  // (the approximation only looks at local structure).
  EXPECT_DOUBLE_EQ(ApproxGraphEditDistance(g, g), 0.0);
  Rag h = Permuted(g, &rng);
  EXPECT_NEAR(ApproxGraphEditDistance(g, h), 0.0, 1e-9);
}

TEST_P(GraphPropertyTest, GedSymmetricOnRandomPairs) {
  Rng rng(GetParam() ^ 0xD4);
  Rag g = RandomGraph(&rng, static_cast<size_t>(rng.UniformInt(2, 6)), 0.5);
  Rag h = RandomGraph(&rng, static_cast<size_t>(rng.UniformInt(2, 6)), 0.5);
  EXPECT_NEAR(ApproxGraphEditDistance(g, h), ApproxGraphEditDistance(h, g),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace strg::graph
