// ctest-labels: unit
#include <gtest/gtest.h>

#include <cmath>

#include "graph/neighborhood.h"
#include "graph/rag.h"
#include "segment/segmenter.h"
#include "video/frame.h"

namespace strg::graph {
namespace {

NodeAttr MakeAttr(double size, double r, double g, double b, double cx,
                  double cy) {
  NodeAttr a;
  a.size = size;
  a.color = {r, g, b};
  a.cx = cx;
  a.cy = cy;
  return a;
}

TEST(Rag, AddNodesAndEdges) {
  Rag rag;
  int a = rag.AddNode(MakeAttr(10, 0, 0, 0, 0, 0));
  int b = rag.AddNode(MakeAttr(20, 0, 0, 0, 3, 4));
  rag.AddEdge(a, b);
  EXPECT_EQ(rag.NumNodes(), 2u);
  EXPECT_EQ(rag.NumEdges(), 1u);
  EXPECT_TRUE(rag.HasEdge(a, b));
  EXPECT_TRUE(rag.HasEdge(b, a));
  const SpatialEdgeAttr* e = rag.EdgeAttr(a, b);
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->distance, 5.0);  // 3-4-5 triangle
  EXPECT_NEAR(e->orientation, std::atan2(4, 3), 1e-12);
}

TEST(Rag, BackEdgeOrientationIsReversed) {
  Rag rag;
  int a = rag.AddNode(MakeAttr(10, 0, 0, 0, 0, 0));
  int b = rag.AddNode(MakeAttr(10, 0, 0, 0, 10, 0));
  rag.AddEdge(a, b);
  EXPECT_NEAR(rag.EdgeAttr(a, b)->orientation, 0.0, 1e-12);
  EXPECT_NEAR(std::fabs(rag.EdgeAttr(b, a)->orientation), M_PI, 1e-9);
}

TEST(Rag, DuplicateEdgeIgnored) {
  Rag rag;
  int a = rag.AddNode(MakeAttr(1, 0, 0, 0, 0, 0));
  int b = rag.AddNode(MakeAttr(1, 0, 0, 0, 1, 0));
  rag.AddEdge(a, b);
  rag.AddEdge(b, a);
  EXPECT_EQ(rag.NumEdges(), 1u);
}

TEST(Rag, RejectsSelfLoopAndBadIds) {
  Rag rag;
  int a = rag.AddNode(MakeAttr(1, 0, 0, 0, 0, 0));
  EXPECT_THROW(rag.AddEdge(a, a), std::invalid_argument);
  EXPECT_THROW(rag.AddEdge(a, 5), std::out_of_range);
}

TEST(Rag, BuildFromSegmentationMatchesDefinition1) {
  video::Frame f(20, 10, video::Rgb{0, 0, 0});
  for (int y = 0; y < 10; ++y) {
    for (int x = 10; x < 20; ++x) f.At(x, y) = video::Rgb{255, 255, 255};
  }
  segment::SegmenterParams params;
  params.use_mean_shift = false;
  Rag rag = BuildRag(segment::SegmentFrame(f, params));
  ASSERT_EQ(rag.NumNodes(), 2u);
  EXPECT_EQ(rag.NumEdges(), 1u);
  // Node attributes carry size, color, centroid.
  double total_size = rag.node(0).size + rag.node(1).size;
  EXPECT_DOUBLE_EQ(total_size, 200.0);
  EXPECT_NEAR(rag.EdgeAttr(0, 1)->distance, 10.0, 1e-9);
}

TEST(Attributes, AngleDiffWrapsAround) {
  EXPECT_NEAR(AngleDiff(3.0, -3.0), 2 * M_PI - 6.0, 1e-12);
  EXPECT_NEAR(AngleDiff(0.5, 0.75), 0.25, 1e-12);
  EXPECT_NEAR(AngleDiff(0.0, 2 * M_PI), 0.0, 1e-12);
}

TEST(Attributes, NodesCompatibleRespectsTolerances) {
  AttrTolerance tol;
  NodeAttr a = MakeAttr(100, 200, 0, 0, 10, 10);
  NodeAttr same_ish = MakeAttr(110, 210, 5, 5, 12, 11);
  NodeAttr far_away = MakeAttr(100, 200, 0, 0, 60, 10);
  NodeAttr wrong_color = MakeAttr(100, 0, 200, 0, 10, 10);
  NodeAttr wrong_size = MakeAttr(500, 200, 0, 0, 10, 10);
  EXPECT_TRUE(NodesCompatible(a, a, tol));
  EXPECT_TRUE(NodesCompatible(a, same_ish, tol));
  EXPECT_FALSE(NodesCompatible(a, far_away, tol));
  EXPECT_FALSE(NodesCompatible(a, wrong_color, tol));
  EXPECT_FALSE(NodesCompatible(a, wrong_size, tol));
}

TEST(Attributes, EdgesCompatibleRespectsTolerances) {
  AttrTolerance tol;
  SpatialEdgeAttr e1{10.0, 0.0};
  SpatialEdgeAttr e2{12.0, 0.3};
  SpatialEdgeAttr too_long{30.0, 0.0};
  SpatialEdgeAttr wrong_dir{10.0, 2.5};
  EXPECT_TRUE(EdgesCompatible(e1, e2, tol));
  EXPECT_FALSE(EdgesCompatible(e1, too_long, tol));
  EXPECT_FALSE(EdgesCompatible(e1, wrong_dir, tol));
}

TEST(Neighborhood, StarOfCenterNode) {
  Rag rag;
  int hub = rag.AddNode(MakeAttr(10, 0, 0, 0, 0, 0));
  int n1 = rag.AddNode(MakeAttr(20, 0, 0, 0, 5, 0));
  int n2 = rag.AddNode(MakeAttr(30, 0, 0, 0, 0, 5));
  int isolated = rag.AddNode(MakeAttr(40, 0, 0, 0, 9, 9));
  rag.AddEdge(hub, n1);
  rag.AddEdge(hub, n2);
  rag.AddEdge(n1, n2);

  NeighborhoodGraph ng = MakeNeighborhoodGraph(rag, hub);
  EXPECT_EQ(ng.center, hub);
  EXPECT_EQ(ng.neighbor_ids.size(), 2u);
  EXPECT_EQ(ng.NumNodes(), 3u);
  EXPECT_EQ(ng.neighbor_attrs.size(), ng.edge_attrs.size());

  NeighborhoodGraph lonely = MakeNeighborhoodGraph(rag, isolated);
  EXPECT_EQ(lonely.NumNodes(), 1u);

  auto all = AllNeighborhoodGraphs(rag);
  EXPECT_EQ(all.size(), 4u);
  EXPECT_EQ(all[static_cast<size_t>(n1)].neighbor_ids.size(), 2u);
}

}  // namespace
}  // namespace strg::graph
