// ctest-labels: unit
#include <gtest/gtest.h>

#include "distance/eged.h"
#include "index/strg_index.h"
#include "synth/generator.h"

namespace strg::index {
namespace {

using dist::Sequence;

std::vector<Sequence> MakeDb() {
  synth::SynthParams params;
  params.items_per_cluster = 4;
  params.noise_pct = 8.0;
  params.seed = 61;
  return synth::GenerateSyntheticOgs(params).Sequences(
      synth::SynthScaling());
}

StrgIndex BuildIndex(const std::vector<Sequence>& db) {
  StrgIndexParams params;
  params.num_clusters = 10;
  params.cluster_params.max_iterations = 6;
  StrgIndex idx(params);
  idx.AddSegment(core::BackgroundGraph{}, db);
  return idx;
}

TEST(IndexRemove, RemovedOgNoLongerRetrieved) {
  auto db = MakeDb();
  StrgIndex idx = BuildIndex(db);
  ASSERT_EQ(idx.Remove(7), 1u);
  EXPECT_EQ(idx.NumIndexedOgs(), db.size() - 1);
  auto result = idx.Knn(db[7], 3);
  for (const KnnHit& h : result.hits) {
    EXPECT_NE(h.og_id, 7u);
  }
}

TEST(IndexRemove, UnknownIdIsNoop) {
  auto db = MakeDb();
  StrgIndex idx = BuildIndex(db);
  EXPECT_EQ(idx.Remove(999999), 0u);
  EXPECT_EQ(idx.NumIndexedOgs(), db.size());
}

TEST(IndexRemove, RemainingAnswersStayExact) {
  auto db = MakeDb();
  StrgIndex idx = BuildIndex(db);
  for (size_t id : {0ul, 5ul, 11ul, 60ul}) idx.Remove(id);

  // Brute force over the surviving set.
  const Sequence& q = db[20];
  std::vector<KnnHit> expected;
  for (size_t i = 0; i < db.size(); ++i) {
    if (i == 0 || i == 5 || i == 11 || i == 60) continue;
    expected.push_back({i, dist::EgedMetric(q, db[i])});
  }
  std::sort(expected.begin(), expected.end(),
            [](const KnnHit& a, const KnnHit& b) {
              return a.distance < b.distance;
            });
  auto got = idx.Knn(q, 5);
  ASSERT_EQ(got.hits.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(got.hits[i].distance, expected[i].distance, 1e-9);
  }
}

TEST(IndexRemove, EmptyingAClusterDropsIt) {
  StrgIndexParams params;
  params.num_clusters = 1;
  StrgIndex idx(params);
  Sequence s(6, dist::FeatureVec{});
  idx.AddSegment(core::BackgroundGraph{}, {s, s}, {1, 2});
  EXPECT_EQ(idx.NumClusters(), 1u);
  EXPECT_EQ(idx.Remove(1), 1u);
  EXPECT_EQ(idx.Remove(2), 1u);
  EXPECT_EQ(idx.NumClusters(), 0u);
  EXPECT_TRUE(idx.Knn(s, 1).hits.empty());
}

TEST(IndexRemove, DuplicateIdsAllRemoved) {
  StrgIndexParams params;
  params.num_clusters = 2;
  StrgIndex idx(params);
  auto db = MakeDb();
  int root = idx.AddSegment(core::BackgroundGraph{},
                            {db.begin(), db.begin() + 6});
  idx.Insert(root, db[10], 3);  // id 3 now appears twice
  EXPECT_EQ(idx.Remove(3), 2u);
}

}  // namespace
}  // namespace strg::index
