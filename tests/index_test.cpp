// ctest-labels: unit
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "distance/eged.h"
#include "index/strg_index.h"
#include "synth/generator.h"
#include "util/random.h"

namespace strg::index {
namespace {

using dist::Sequence;

/// Brute-force k-NN under EGED_M for ground truth.
std::vector<KnnHit> BruteForceKnn(const std::vector<Sequence>& db,
                                  const Sequence& q, size_t k) {
  std::vector<KnnHit> hits;
  for (size_t i = 0; i < db.size(); ++i) {
    hits.push_back({i, dist::EgedMetric(q, db[i])});
  }
  std::sort(hits.begin(), hits.end(), [](const KnnHit& a, const KnnHit& b) {
    return a.distance < b.distance;
  });
  hits.resize(std::min(k, hits.size()));
  return hits;
}

struct Workload {
  std::vector<Sequence> db;
  std::vector<Sequence> queries;
};

Workload MakeWorkload(size_t items_per_cluster = 6, uint64_t seed = 21) {
  synth::SynthParams params;
  params.items_per_cluster = items_per_cluster;
  params.noise_pct = 8.0;
  params.seed = seed;
  synth::SynthDataset ds = synth::GenerateSyntheticOgs(params);
  Workload w;
  w.db = ds.Sequences(synth::SynthScaling());

  synth::SynthParams qparams = params;
  qparams.items_per_cluster = 1;
  qparams.seed = seed + 1;
  synth::SynthDataset qs = synth::GenerateSyntheticOgs(qparams);
  auto all = qs.Sequences(synth::SynthScaling());
  w.queries.assign(all.begin(), all.begin() + 12);
  return w;
}

StrgIndexParams FastParams() {
  StrgIndexParams p;
  p.num_clusters = 12;  // skip the BIC sweep in unit tests
  p.cluster_params.max_iterations = 8;
  return p;
}

TEST(StrgIndex, BuildPopulatesThreeLevels) {
  Workload w = MakeWorkload(4);
  StrgIndex idx(FastParams());
  int root = idx.AddSegment(core::BackgroundGraph{}, w.db);
  EXPECT_EQ(root, 0);
  EXPECT_EQ(idx.NumSegments(), 1u);
  EXPECT_GT(idx.NumClusters(), 1u);
  EXPECT_EQ(idx.NumIndexedOgs(), w.db.size());
}

TEST(StrgIndex, LeafKeysSortedAscending) {
  Workload w = MakeWorkload(4);
  StrgIndex idx(FastParams());
  int root = idx.AddSegment(core::BackgroundGraph{}, w.db);
  for (size_t c = 0; c < 3; ++c) {
    auto keys = idx.LeafKeys(root, c);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    for (double k : keys) EXPECT_GE(k, 0.0);
  }
}

TEST(StrgIndex, KnnMatchesBruteForce) {
  Workload w = MakeWorkload(5);
  StrgIndex idx(FastParams());
  idx.AddSegment(core::BackgroundGraph{}, w.db);
  for (const Sequence& q : w.queries) {
    auto expected = BruteForceKnn(w.db, q, 5);
    auto got = idx.Knn(q, 5);
    ASSERT_EQ(got.hits.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR(got.hits[i].distance, expected[i].distance, 1e-9)
          << "rank " << i;
    }
  }
}

TEST(StrgIndex, KnnPrunesDistanceComputations) {
  Workload w = MakeWorkload(6);
  StrgIndex idx(FastParams());
  idx.AddSegment(core::BackgroundGraph{}, w.db);
  size_t total = 0;
  for (const Sequence& q : w.queries) {
    total += idx.Knn(q, 5).distance_computations;
  }
  double avg = static_cast<double>(total) / w.queries.size();
  // Pruning must beat a linear scan (db size + centroid comparisons).
  EXPECT_LT(avg, 0.8 * static_cast<double>(w.db.size()));
}

TEST(StrgIndex, KnnRespectsK) {
  Workload w = MakeWorkload(3);
  StrgIndex idx(FastParams());
  idx.AddSegment(core::BackgroundGraph{}, w.db);
  EXPECT_EQ(idx.Knn(w.queries[0], 1).hits.size(), 1u);
  EXPECT_EQ(idx.Knn(w.queries[0], 7).hits.size(), 7u);
  EXPECT_TRUE(idx.Knn(w.queries[0], 0).hits.empty());
  auto all = idx.Knn(w.queries[0], w.db.size() + 50);
  EXPECT_EQ(all.hits.size(), w.db.size());
}

TEST(StrgIndex, HitsAscendingAndUnique) {
  Workload w = MakeWorkload(4);
  StrgIndex idx(FastParams());
  idx.AddSegment(core::BackgroundGraph{}, w.db);
  auto result = idx.Knn(w.queries[0], 10);
  std::set<size_t> ids;
  double prev = -1.0;
  for (const KnnHit& h : result.hits) {
    EXPECT_GE(h.distance, prev);
    prev = h.distance;
    ids.insert(h.og_id);
  }
  EXPECT_EQ(ids.size(), result.hits.size());
}

TEST(StrgIndex, InsertThenFindable) {
  Workload w = MakeWorkload(3);
  StrgIndex idx(FastParams());
  int root = idx.AddSegment(core::BackgroundGraph{}, w.db);
  Sequence novel = w.queries[0];
  idx.Insert(root, novel, 9999);
  auto result = idx.Knn(novel, 1);
  ASSERT_EQ(result.hits.size(), 1u);
  EXPECT_EQ(result.hits[0].og_id, 9999u);
  EXPECT_NEAR(result.hits[0].distance, 0.0, 1e-9);
}

TEST(StrgIndex, InsertIntoEmptySegmentCreatesCluster) {
  StrgIndex idx(FastParams());
  int root = idx.AddSegment(core::BackgroundGraph{}, {});
  EXPECT_EQ(idx.NumClusters(), 0u);
  Sequence s(6, dist::FeatureVec{});
  idx.Insert(root, s, 1);
  EXPECT_EQ(idx.NumClusters(), 1u);
  EXPECT_EQ(idx.Knn(s, 1).hits[0].og_id, 1u);
}

TEST(StrgIndex, LeafSplitKeepsAllEntriesSearchable) {
  // Build a genuinely bimodal overfull leaf: OGs from just two distant
  // moving patterns. The Section 5.3 split test (EM K=2 vs K=1 by BIC)
  // must split it; a 48-pattern hodgepodge would rightly NOT split, since
  // its per-half sigma barely shrinks.
  synth::SynthParams sp;
  sp.items_per_cluster = 30;
  sp.noise_pct = 4.0;
  sp.seed = 5;
  synth::SynthDataset ds = synth::GenerateSyntheticOgs(sp);
  auto all = ds.Sequences(synth::SynthScaling());
  std::vector<dist::Sequence> two_patterns;
  for (size_t i = 0; i < all.size(); ++i) {
    if (ds.labels[i] == 0 || ds.labels[i] == 10) {
      two_patterns.push_back(all[i]);  // opposite vertical lanes
    }
  }
  ASSERT_EQ(two_patterns.size(), 60u);

  StrgIndexParams params = FastParams();
  params.num_clusters = 1;           // force everything into one leaf
  params.leaf_split_threshold = 16;  // then make it split on inserts
  StrgIndex idx(params);
  int root = idx.AddSegment(core::BackgroundGraph{},
                            {two_patterns.begin(), two_patterns.begin() + 10});
  for (size_t i = 10; i < two_patterns.size(); ++i) {
    idx.Insert(root, two_patterns[i], i);
  }
  EXPECT_EQ(idx.NumIndexedOgs(), 60u);
  EXPECT_GT(idx.NumClusters(), 1u);  // at least one split happened
  // Every inserted OG is still retrievable as its own nearest neighbor.
  for (size_t i = 10; i < two_patterns.size(); i += 7) {
    auto r = idx.Knn(two_patterns[i], 1);
    ASSERT_EQ(r.hits.size(), 1u);
    EXPECT_NEAR(r.hits[0].distance, 0.0, 1e-9);
  }
}

TEST(StrgIndex, MultipleSegmentsSearchedWithoutBg) {
  Workload w = MakeWorkload(3);
  StrgIndex idx(FastParams());
  size_t half = w.db.size() / 2;
  std::vector<Sequence> first(w.db.begin(), w.db.begin() + half);
  std::vector<Sequence> second(w.db.begin() + half, w.db.end());
  std::vector<size_t> ids2;
  for (size_t i = half; i < w.db.size(); ++i) ids2.push_back(i);
  idx.AddSegment(core::BackgroundGraph{}, first);
  idx.AddSegment(core::BackgroundGraph{}, second, ids2);
  EXPECT_EQ(idx.NumSegments(), 2u);

  auto expected = BruteForceKnn(w.db, w.queries[0], 5);
  auto got = idx.Knn(w.queries[0], 5);
  ASSERT_EQ(got.hits.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(got.hits[i].distance, expected[i].distance, 1e-9);
  }
}

TEST(StrgIndex, BgRoutingPicksMatchingSegment) {
  // Two segments with distinguishable backgrounds; a query BG matching the
  // second must be routed there (Algorithm 3 step 2).
  graph::NodeAttr bg_a;
  bg_a.size = 500;
  bg_a.color = {10, 10, 10};
  bg_a.cx = 40;
  bg_a.cy = 30;
  graph::NodeAttr bg_b = bg_a;
  bg_b.color = {240, 240, 240};

  core::BackgroundGraph bga, bgb;
  bga.rag.AddNode(bg_a);
  bgb.rag.AddNode(bg_b);

  Workload w = MakeWorkload(3);
  StrgIndex idx(FastParams());
  size_t half = w.db.size() / 2;
  idx.AddSegment(bga, {w.db.begin(), w.db.begin() + half});
  std::vector<size_t> ids2;
  for (size_t i = half; i < w.db.size(); ++i) ids2.push_back(i);
  idx.AddSegment(bgb, {w.db.begin() + half, w.db.end()}, ids2);

  auto result = idx.Knn(w.db[half + 3], w.db.size(), &bgb);
  // Only the second segment's OGs are reachable through BG routing.
  for (const KnnHit& h : result.hits) {
    EXPECT_GE(h.og_id, half);
  }
}

TEST(StrgIndex, SizeBytesTracksContent) {
  Workload w = MakeWorkload(3);
  StrgIndex empty(FastParams());
  StrgIndex idx(FastParams());
  idx.AddSegment(core::BackgroundGraph{}, w.db);
  EXPECT_EQ(empty.SizeBytes(), 0u);
  EXPECT_GT(idx.SizeBytes(), 0u);
}

TEST(StrgIndex, BicDrivenClusterCountIsReasonable) {
  // With auto-K (BIC), the index should find more than one cluster on
  // multi-pattern data.
  synth::SynthParams sp;
  sp.items_per_cluster = 2;
  sp.noise_pct = 5.0;
  synth::SynthDataset ds = synth::GenerateSyntheticOgs(sp);
  StrgIndexParams params;
  params.num_clusters = 0;
  params.k_min = 2;
  params.k_max = 8;
  params.cluster_params.max_iterations = 6;
  StrgIndex idx(params);
  idx.AddSegment(core::BackgroundGraph{}, ds.Sequences(synth::SynthScaling()));
  EXPECT_GE(idx.NumClusters(), 2u);
  EXPECT_LE(idx.NumClusters(), 8u);
}

TEST(PaperIndexSize, Equation10SmallerThanEquation9) {
  // Build a tiny decomposition by hand: 3 OGs + a BG; with many frames the
  // Eq. 9 STRG size must dwarf the Eq. 10 index size (Table 2's 10-15x).
  core::Decomposition d;
  for (int i = 0; i < 3; ++i) {
    core::Og og;
    og.sequence.resize(20);
    d.object_graphs.push_back(og);
  }
  graph::NodeAttr attr;
  for (int i = 0; i < 10; ++i) d.background.rag.AddNode(attr);
  size_t strg_size = core::PaperStrgSizeBytes(d, 1000);
  size_t index_size = PaperIndexSizeBytes(d, 2);
  EXPECT_GT(strg_size, 10 * index_size);
}

}  // namespace
}  // namespace strg::index
