// ctest-labels: ingest
// Parallel-ingest equivalence suite (ctest label: ingest).
//
// The staged ingest pipeline's contract is *bit-identical* output: the
// optimized mean-shift kernel against the naive reference, the workspace
// segmenter against the allocating one, and the pooled frame/shot stages
// against the serial path at 1/2/4 threads. Everything here compares
// serialized bytes or full field equality, never tolerances.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "segment/mean_shift.h"
#include "segment/segmenter.h"
#include "server/metrics.h"
#include "storage/serializer.h"
#include "util/ordered_stage.h"
#include "util/thread_pool.h"
#include "video/renderer.h"
#include "video/scenes.h"

namespace strg {
namespace {

using api::IngestStats;
using api::PipelineParams;
using api::ProcessFrames;
using api::SegmentResult;
using api::VideoPipeline;
using segment::MeanShiftParams;
using segment::Segmentation;
using video::Frame;
using video::Rgb;

// ---- deterministic frame factories -------------------------------------

Frame NoiseFrame(std::mt19937* rng, int w, int h) {
  Frame f(w, h);
  for (Rgb& p : f.pixels()) {
    p = {static_cast<uint8_t>((*rng)() % 256),
         static_cast<uint8_t>((*rng)() % 256),
         static_cast<uint8_t>((*rng)() % 256)};
  }
  return f;
}

Frame TiledNoiseFrame(std::mt19937* rng, int w, int h, double sigma) {
  std::normal_distribution<double> noise(0.0, sigma);
  Frame f(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      double base = ((x / 8) + (y / 8)) % 2 ? 150.0 : 60.0;
      f.At(x, y) = {video::ClampByte(base + noise(*rng)),
                    video::ClampByte(base * 0.8 + noise(*rng)),
                    video::ClampByte(base * 1.1 + noise(*rng))};
    }
  }
  return f;
}

video::SceneSpec NoisyLab(int num_objects, uint64_t seed, int width = 48,
                          int height = 36) {
  video::SceneParams sp;
  sp.num_objects = num_objects;
  sp.width = width;
  sp.height = height;
  sp.noise_stddev = 2.0;
  sp.seed = seed;
  return video::MakeLabScene(sp);
}

/// Pipeline params exercising the real kernel on every frame.
PipelineParams MeanShiftPipeline() {
  PipelineParams p;
  p.segmenter.use_mean_shift = true;
  return p;
}

// ---- byte fingerprints ---------------------------------------------------

std::string FingerprintStrg(const core::Strg& strg) {
  storage::Writer w;
  w.PutVarint(strg.NumFrames());
  for (size_t t = 0; t < strg.NumFrames(); ++t) {
    storage::EncodeRag(strg.Frame(t), &w);
  }
  for (size_t t = 0; t + 1 < strg.NumFrames(); ++t) {
    const auto& edges = strg.TemporalEdges(t);
    w.PutVarint(edges.size());
    for (const core::TemporalEdge& e : edges) {
      w.PutU32(static_cast<uint32_t>(e.from_node));
      w.PutU32(static_cast<uint32_t>(e.to_node));
      w.PutDouble(e.attr.velocity);
      w.PutDouble(e.attr.direction);
    }
  }
  return w.Take();
}

std::string FingerprintResult(const SegmentResult& r) {
  storage::Writer w;
  w.PutU64(r.num_frames);
  w.PutU32(static_cast<uint32_t>(r.frame_width));
  w.PutU32(static_cast<uint32_t>(r.frame_height));
  w.PutU64(r.strg_size_bytes);
  const core::Decomposition& d = r.decomposition;
  w.PutVarint(d.orgs.size());
  for (const core::Org& org : d.orgs) {
    w.PutVarint(org.nodes.size());
    for (const core::OrgNode& n : org.nodes) {
      w.PutU32(static_cast<uint32_t>(n.frame));
      w.PutU32(static_cast<uint32_t>(n.node));
    }
    for (const graph::NodeAttr& a : org.attrs) storage::EncodeNodeAttr(a, &w);
    w.PutVarint(org.motion.size());
    for (const graph::TemporalEdgeAttr& m : org.motion) {
      w.PutDouble(m.velocity);
      w.PutDouble(m.direction);
    }
  }
  w.PutVarint(d.object_orgs.size());
  for (size_t i : d.object_orgs) w.PutVarint(i);
  w.PutVarint(d.background_orgs.size());
  for (size_t i : d.background_orgs) w.PutVarint(i);
  w.PutVarint(d.object_graphs.size());
  for (const core::Og& og : d.object_graphs) storage::EncodeOg(og, &w);
  storage::EncodeBackgroundGraph(d.background, &w);
  return w.Take();
}

// ---- mean-shift kernel equivalence --------------------------------------

TEST(MeanShiftKernel, BitIdenticalToReference) {
  std::mt19937 rng(42);
  segment::MeanShiftWorkspace ws;
  Frame out;
  for (int trial = 0; trial < 24; ++trial) {
    const int w = 1 + static_cast<int>(rng() % 41);
    const int h = 1 + static_cast<int>(rng() % 31);
    Frame f = (trial % 3 == 0) ? NoiseFrame(&rng, w, h)
                               : TiledNoiseFrame(&rng, w, h, trial % 3 == 1
                                                                ? 2.0
                                                                : 8.0);
    MeanShiftParams params;
    params.spatial_radius = static_cast<int>(rng() % 4);  // 0..3
    params.range_radius = 5.0 + static_cast<double>(rng() % 40);
    params.max_iterations = 1 + static_cast<int>(rng() % 6);
    params.convergence = (trial % 2 != 0) ? 0.5 : 0.01;

    Frame ref = segment::MeanShiftReference(f, params);
    segment::MeanShiftFilter(f, params, &ws, &out);  // workspace reused
    ASSERT_EQ(ref.pixels(), out.pixels())
        << "trial=" << trial << " w=" << w << " h=" << h
        << " R=" << params.spatial_radius << " rr=" << params.range_radius
        << " iters=" << params.max_iterations;
  }
}

TEST(MeanShiftKernel, FlatAndEdgeFramesExerciseFastPaths) {
  // Flat frames hit the convergence-point cache on nearly every pixel and
  // hard edges defeat the all-in-range shortcut; both must stay exact.
  MeanShiftParams params;
  Frame flat(33, 17, Rgb{77, 88, 99});
  EXPECT_EQ(segment::MeanShiftReference(flat, params).pixels(),
            segment::MeanShiftFilter(flat, params).pixels());

  Frame halves(40, 20, Rgb{0, 0, 0});
  for (int y = 0; y < 20; ++y) {
    for (int x = 20; x < 40; ++x) halves.At(x, y) = Rgb{240, 240, 240};
  }
  EXPECT_EQ(segment::MeanShiftReference(halves, params).pixels(),
            segment::MeanShiftFilter(halves, params).pixels());
}

TEST(MeanShiftKernel, DegenerateParamsMatchReference) {
  std::mt19937 rng(7);
  Frame f = TiledNoiseFrame(&rng, 21, 13, 4.0);
  std::vector<MeanShiftParams> cases(4);
  cases[0].spatial_radius = -1;
  cases[1].max_iterations = 0;
  cases[2].range_radius = 0.0;
  cases[3].spatial_radius = 50;  // window spans the whole frame
  for (const MeanShiftParams& params : cases) {
    EXPECT_EQ(segment::MeanShiftReference(f, params).pixels(),
              segment::MeanShiftFilter(f, params).pixels());
  }
}

// ---- segmenter workspace equivalence ------------------------------------

void ExpectSegmentationEqual(const Segmentation& a, const Segmentation& b) {
  ASSERT_EQ(a.width, b.width);
  ASSERT_EQ(a.height, b.height);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.adjacency, b.adjacency);
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (size_t i = 0; i < a.regions.size(); ++i) {
    const segment::Region& ra = a.regions[i];
    const segment::Region& rb = b.regions[i];
    EXPECT_EQ(ra.id, rb.id);
    EXPECT_EQ(ra.size, rb.size);
    EXPECT_EQ(ra.mean_color, rb.mean_color);
    EXPECT_EQ(ra.centroid_x, rb.centroid_x);
    EXPECT_EQ(ra.centroid_y, rb.centroid_y);
    EXPECT_EQ(ra.min_x, rb.min_x);
    EXPECT_EQ(ra.max_x, rb.max_x);
    EXPECT_EQ(ra.min_y, rb.min_y);
    EXPECT_EQ(ra.max_y, rb.max_y);
  }
}

TEST(SegmenterWorkspace, ReusedWorkspaceMatchesFreshAcrossFrames) {
  video::SceneSpec scene = NoisyLab(2, 11);
  segment::SegmenterParams params;  // mean shift on
  segment::SegmenterWorkspace ws;
  Segmentation reused;
  for (int t = 0; t < std::min(scene.num_frames, 6); ++t) {
    Frame f = video::RenderFrame(scene, t);
    segment::SegmentFrameInto(f, params, &ws, &reused);
    Segmentation fresh = segment::SegmentFrame(f, params);
    ExpectSegmentationEqual(fresh, reused);
  }
}

TEST(SegmenterWorkspace, ReferenceKernelKnobIsBitIdentical) {
  std::mt19937 rng(3);
  Frame f = TiledNoiseFrame(&rng, 40, 30, 2.0);
  segment::SegmenterParams opt;
  segment::SegmenterParams ref = opt;
  ref.use_reference_kernel = true;
  ExpectSegmentationEqual(segment::SegmentFrame(f, opt),
                          segment::SegmentFrame(f, ref));
}

// ---- ordered stage -------------------------------------------------------

TEST(OrderedStage, MergesInSubmissionOrderAndCountsStalls) {
  ThreadPool pool(4);
  std::vector<int> order;
  OrderedStage<int> stage(&pool, 2, [&](int&& v) { order.push_back(v); });
  for (int i = 0; i < 16; ++i) {
    stage.Submit([i] {
      // Reverse-staggered sleeps: later tasks finish first without the
      // in-order merge.
      std::this_thread::sleep_for(std::chrono::milliseconds((16 - i) % 4));
      return i;
    });
  }
  stage.Drain();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
  // Capacity 2 with 16 slow tasks must have exerted backpressure.
  EXPECT_GT(stage.stalls(), 0u);
}

// ---- pooled pipeline equivalence ----------------------------------------

TEST(ParallelIngest, PooledVideoPipelineBitIdenticalAt124Threads) {
  video::SceneSpec scene = NoisyLab(2, 21);
  std::vector<Frame> frames = RenderScene(scene);

  PipelineParams serial = MeanShiftPipeline();
  VideoPipeline serial_pipeline(serial);
  for (const Frame& f : frames) serial_pipeline.PushFrame(f);
  SegmentResult serial_result = serial_pipeline.Finish();
  const std::string want = FingerprintResult(serial_result);
  const std::string want_strg = FingerprintStrg(serial_pipeline.strg());

  for (size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    PipelineParams pooled = MeanShiftPipeline();
    pooled.pool = &pool;
    VideoPipeline pipeline(pooled);
    for (size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(pipeline.PushFrame(frames[i]), static_cast<int>(i));
    }
    SegmentResult result = pipeline.Finish();
    EXPECT_EQ(FingerprintResult(result), want) << threads << " threads";
    EXPECT_EQ(FingerprintStrg(pipeline.strg()), want_strg)
        << threads << " threads";
    EXPECT_EQ(pipeline.stats().frames_segmented, frames.size());
  }
}

std::vector<Frame> MultiShotStream() {
  std::vector<Frame> frames;
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    video::SceneParams sp;
    sp.num_objects = 1;
    sp.width = 40;
    sp.height = 30;
    sp.noise_stddev = 2.0;
    sp.seed = seed;
    video::SceneSpec scene = seed % 2 ? video::MakeLabScene(sp)
                                      : video::MakeTrafficScene(sp);
    std::vector<Frame> shot = RenderScene(scene);
    size_t take = std::min<size_t>(shot.size(), 12);
    frames.insert(frames.end(), shot.begin(),
                  shot.begin() + static_cast<long>(take));
  }
  return frames;
}

TEST(ParallelIngest, ProcessFramesPooledBitIdentical) {
  std::vector<Frame> frames = MultiShotStream();
  PipelineParams params = MeanShiftPipeline();
  std::vector<SegmentResult> serial = ProcessFrames(frames, params);
  ASSERT_GE(serial.size(), 2u) << "stream must span several shots";

  std::vector<std::string> want;
  for (const SegmentResult& r : serial) want.push_back(FingerprintResult(r));

  for (size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    PipelineParams pooled = MeanShiftPipeline();
    pooled.pool = &pool;
    IngestStats stats;
    std::vector<SegmentResult> got =
        ProcessFrames(frames, pooled, {}, &stats);
    ASSERT_EQ(got.size(), serial.size()) << threads << " threads";
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(FingerprintResult(got[i]), want[i])
          << "shot " << i << ", " << threads << " threads";
    }
    EXPECT_EQ(stats.shots_processed, serial.size());
    EXPECT_EQ(stats.frames_segmented, frames.size());
  }
}

TEST(ParallelIngest, QueueBackpressureIsCountedAndHarmless) {
  video::SceneSpec scene = NoisyLab(1, 5);
  std::vector<Frame> frames = RenderScene(scene);

  PipelineParams serial = MeanShiftPipeline();
  VideoPipeline serial_pipeline(serial);
  for (const Frame& f : frames) serial_pipeline.PushFrame(f);
  const std::string want = FingerprintResult(serial_pipeline.Finish());

  ThreadPool pool(1);
  PipelineParams pooled = MeanShiftPipeline();
  pooled.pool = &pool;
  pooled.queue_capacity = 1;  // every second push must wait
  VideoPipeline pipeline(pooled);
  for (const Frame& f : frames) pipeline.PushFrame(f);
  SegmentResult result = pipeline.Finish();
  EXPECT_EQ(FingerprintResult(result), want);
  EXPECT_GT(pipeline.stats().queue_full_stalls, 0u);
}

// ---- repeated Finish() snapshots ----------------------------------------

TEST(ParallelIngest, RepeatedFinishSnapshotsMidStream) {
  video::SceneSpec scene = NoisyLab(2, 31);
  std::vector<Frame> frames = RenderScene(scene);
  const size_t half = frames.size() / 2;

  // Ground truth: fresh serial pipelines over the prefix and the whole.
  VideoPipeline prefix_pipeline(MeanShiftPipeline());
  for (size_t i = 0; i < half; ++i) prefix_pipeline.PushFrame(frames[i]);
  const std::string want_half = FingerprintResult(prefix_pipeline.Finish());
  VideoPipeline full_pipeline(MeanShiftPipeline());
  for (const Frame& f : frames) full_pipeline.PushFrame(f);
  const std::string want_full = FingerprintResult(full_pipeline.Finish());

  ThreadPool pool(2);
  for (bool use_pool : {false, true}) {
    PipelineParams params = MeanShiftPipeline();
    if (use_pool) params.pool = &pool;
    VideoPipeline pipeline(params);
    for (size_t i = 0; i < half; ++i) pipeline.PushFrame(frames[i]);
    SegmentResult snap = pipeline.Finish();
    EXPECT_EQ(FingerprintResult(snap), want_half) << "pool=" << use_pool;
    EXPECT_TRUE(snap.has_cached_scaling);
    EXPECT_EQ(snap.Scaling().frame_width, snap.frame_width);
    // Snapshotting must not disturb the stream: keep pushing, finish again.
    for (size_t i = half; i < frames.size(); ++i) {
      pipeline.PushFrame(frames[i]);
    }
    EXPECT_EQ(FingerprintResult(pipeline.Finish()), want_full)
        << "pool=" << use_pool;
    // An idle re-Finish is a pure snapshot: identical bytes.
    EXPECT_EQ(FingerprintResult(pipeline.Finish()), want_full)
        << "pool=" << use_pool;
  }
}

TEST(ParallelIngest, HandBuiltResultDerivesScaling) {
  SegmentResult r;
  r.frame_width = 320;
  r.frame_height = 240;
  EXPECT_FALSE(r.has_cached_scaling);
  EXPECT_EQ(r.Scaling().frame_width, 320.0);
  EXPECT_EQ(r.Scaling().frame_height, 240.0);
}

// ---- ingest counters in server metrics ----------------------------------

TEST(ParallelIngest, ServerMetricsExposeIngestCounters) {
  server::ServerMetrics metrics;
  IngestStats stats;
  stats.frames_segmented = 120;
  stats.shots_processed = 3;
  stats.queue_full_stalls = 7;
  stats.segment_us = 5000;
  stats.track_us = 1500;
  stats.decompose_us = 800;
  metrics.AddIngestPipeline(stats);
  metrics.AddIngestPipeline(stats);  // counters accumulate

  std::string json = metrics.ToJson(1);
  EXPECT_NE(json.find("\"frames_segmented\":240"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shots\":6"), std::string::npos) << json;
  EXPECT_NE(json.find("\"queue_stalls\":14"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stage_us\":{\"segment\":10000,\"track\":3000,"
                      "\"decompose\":1600}"),
            std::string::npos)
      << json;
}

TEST(ParallelIngest, PipelineStatsCountStages) {
  video::SceneSpec scene = NoisyLab(1, 9);
  SegmentResult result = api::ProcessScene(scene, MeanShiftPipeline());
  (void)result;
  VideoPipeline pipeline(MeanShiftPipeline());
  for (int t = 0; t < scene.num_frames; ++t) {
    pipeline.PushFrame(video::RenderFrame(scene, t));
  }
  pipeline.Finish();
  const IngestStats& s = pipeline.stats();
  EXPECT_EQ(s.frames_segmented, static_cast<uint64_t>(scene.num_frames));
  // Mean-shift segmentation of dozens of frames takes well over 1 us.
  EXPECT_GT(s.segment_us, 0u);
  EXPECT_EQ(s.queue_full_stalls, 0u);  // serial path never stalls
}

}  // namespace
}  // namespace strg
