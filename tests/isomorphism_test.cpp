// ctest-labels: unit
#include <gtest/gtest.h>

#include "graph/common_subgraph.h"
#include "graph/isomorphism.h"
#include "graph/neighborhood.h"
#include "graph/rag.h"

namespace strg::graph {
namespace {

NodeAttr MakeAttr(double size, double gray, double cx, double cy) {
  NodeAttr a;
  a.size = size;
  a.color = {gray, gray, gray};
  a.cx = cx;
  a.cy = cy;
  return a;
}

/// Triangle with distinct node sizes.
Rag Triangle(double dx = 0.0, double dy = 0.0) {
  Rag g;
  int a = g.AddNode(MakeAttr(10, 100, 0 + dx, 0 + dy));
  int b = g.AddNode(MakeAttr(20, 100, 6 + dx, 0 + dy));
  int c = g.AddNode(MakeAttr(30, 100, 0 + dx, 6 + dy));
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  g.AddEdge(a, c);
  return g;
}

TEST(Isomorphism, GraphIsIsomorphicToItself) {
  Rag g = Triangle();
  EXPECT_TRUE(AreIsomorphic(g, g, AttrTolerance{}));
}

TEST(Isomorphism, SlightlyShiftedCopyIsIsomorphic) {
  EXPECT_TRUE(AreIsomorphic(Triangle(), Triangle(2.0, 1.0), AttrTolerance{}));
}

TEST(Isomorphism, FarShiftBreaksIsomorphismUnderPositionTolerance) {
  EXPECT_FALSE(
      AreIsomorphic(Triangle(), Triangle(100.0, 0.0), AttrTolerance{}));
}

TEST(Isomorphism, DifferentNodeCountNotIsomorphic) {
  Rag g = Triangle();
  Rag h = Triangle();
  h.AddNode(MakeAttr(10, 100, 3, 3));
  EXPECT_FALSE(AreIsomorphic(g, h, AttrTolerance{}));
}

TEST(Isomorphism, ExtraEdgeBreaksExactIsomorphism) {
  // Path a-b-c vs triangle: same nodes, different edge sets.
  Rag path;
  int a = path.AddNode(MakeAttr(10, 100, 0, 0));
  int b = path.AddNode(MakeAttr(20, 100, 6, 0));
  int c = path.AddNode(MakeAttr(30, 100, 0, 6));
  path.AddEdge(a, b);
  path.AddEdge(b, c);
  EXPECT_FALSE(AreIsomorphic(path, Triangle(), AttrTolerance{}));
}

TEST(SubgraphIsomorphism, EdgeSubsetIsSubgraphIsomorphic) {
  // A single edge pattern embeds in the triangle (Definition 5).
  Rag pattern;
  int a = pattern.AddNode(MakeAttr(10, 100, 0, 0));
  int b = pattern.AddNode(MakeAttr(20, 100, 6, 0));
  pattern.AddEdge(a, b);
  EXPECT_TRUE(IsSubgraphIsomorphic(pattern, Triangle(), AttrTolerance{}));
}

TEST(SubgraphIsomorphism, LargerPatternCannotEmbed) {
  Rag big = Triangle();
  big.AddNode(MakeAttr(40, 100, 3, 3));
  EXPECT_FALSE(IsSubgraphIsomorphic(big, Triangle(), AttrTolerance{}));
}

TEST(SubgraphIsomorphism, IncompatibleAttributesBlockEmbedding) {
  Rag pattern;
  pattern.AddNode(MakeAttr(500, 100, 0, 0));  // no triangle node this big
  EXPECT_FALSE(IsSubgraphIsomorphic(pattern, Triangle(), AttrTolerance{}));
}

NeighborhoodGraph StarOf(const Rag& g, int center) {
  return MakeNeighborhoodGraph(g, center);
}

TEST(NeighborhoodIsomorphism, MatchingStars) {
  Rag g = Triangle();
  Rag h = Triangle(1.0, 0.5);
  EXPECT_TRUE(
      NeighborhoodGraphsIsomorphic(StarOf(g, 0), StarOf(h, 0), AttrTolerance{}));
}

TEST(NeighborhoodIsomorphism, DifferentDegreeFails) {
  Rag g = Triangle();
  Rag h = Triangle();
  int extra = h.AddNode(MakeAttr(15, 100, 3, 3));
  h.AddEdge(0, extra);
  EXPECT_FALSE(
      NeighborhoodGraphsIsomorphic(StarOf(g, 0), StarOf(h, 0), AttrTolerance{}));
}

TEST(NeighborhoodIsomorphism, IncompatibleCenterFails) {
  Rag g = Triangle();
  Rag h = Triangle();
  h.node(0).size = 900;
  EXPECT_FALSE(
      NeighborhoodGraphsIsomorphic(StarOf(g, 0), StarOf(h, 0), AttrTolerance{}));
}

TEST(CommonSubgraph, IdenticalGraphsShareAllNodes) {
  Rag g = Triangle();
  EXPECT_EQ(MostCommonSubgraphSize(g, g, AttrTolerance{}), 3u);
}

TEST(CommonSubgraph, DisjointAttributeSpacesShareNothing) {
  Rag g = Triangle();
  Rag far = Triangle(500.0, 500.0);
  EXPECT_EQ(MostCommonSubgraphSize(g, far, AttrTolerance{}), 0u);
}

TEST(CommonSubgraph, PartialOverlap) {
  // Second graph keeps two triangle nodes, moves the third out of reach.
  Rag h;
  int a = h.AddNode(MakeAttr(10, 100, 0, 0));
  int b = h.AddNode(MakeAttr(20, 100, 6, 0));
  int c = h.AddNode(MakeAttr(30, 100, 400, 400));
  h.AddEdge(a, b);
  h.AddEdge(b, c);
  h.AddEdge(a, c);
  size_t common = MostCommonSubgraphSize(Triangle(), h, AttrTolerance{});
  EXPECT_EQ(common, 2u);
}

TEST(SimGraph, IdenticalNeighborhoodsScoreOne) {
  Rag g = Triangle();
  EXPECT_DOUBLE_EQ(SimGraph(StarOf(g, 0), StarOf(g, 0), AttrTolerance{}), 1.0);
}

TEST(SimGraph, AgreesWithCliqueBasedMcsOnStars) {
  // Cross-check the fast star-specialized SimGraph against the generic
  // association-graph + Bron-Kerbosch MCS (Definition 6).
  Rag g = Triangle();
  Rag h = Triangle(1.0, 1.0);
  h.node(2).size = 900;  // one neighbor becomes incompatible
  for (int center = 0; center < 2; ++center) {
    NeighborhoodGraph ng = StarOf(g, center);
    NeighborhoodGraph nh = StarOf(h, center);
    size_t mcs = MostCommonSubgraphSize(NeighborhoodToRag(ng),
                                        NeighborhoodToRag(nh),
                                        AttrTolerance{});
    double expected = static_cast<double>(mcs) /
                      static_cast<double>(std::min(ng.NumNodes(),
                                                   nh.NumNodes()));
    EXPECT_DOUBLE_EQ(SimGraph(ng, nh, AttrTolerance{}), expected)
        << "center " << center;
  }
}

TEST(SimGraph, ScoreDropsWithNeighborMismatch) {
  Rag g = Triangle();
  Rag h = Triangle();
  h.node(1).color = {0, 0, 0};  // neighbor color now incompatible
  double sim = SimGraph(StarOf(g, 0), StarOf(h, 0), AttrTolerance{});
  EXPECT_LT(sim, 1.0);
  EXPECT_GT(sim, 0.0);
}

}  // namespace
}  // namespace strg::graph
