// ctest-labels: unit
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "distance/eged.h"
#include "mtree/mtree.h"
#include "synth/generator.h"

namespace strg::mtree {
namespace {

using dist::Sequence;

/// Parameter sweep: node capacity x promotion policy. The M-tree must stay
/// correct (exact k-NN, valid invariants) for every configuration.
class MTreeCapacityTest
    : public ::testing::TestWithParam<std::tuple<size_t, Promotion>> {};

TEST_P(MTreeCapacityTest, ExactKnnAndInvariants) {
  auto [capacity, promotion] = GetParam();

  synth::SynthParams sp;
  sp.items_per_cluster = 4;
  sp.noise_pct = 10.0;
  sp.seed = 17;
  auto db = synth::GenerateSyntheticOgs(sp).Sequences(synth::SynthScaling());

  dist::EgedMetricDistance metric;
  MTreeParams params;
  params.node_capacity = capacity;
  params.promotion = promotion;
  MTree tree(&metric, params);
  for (size_t i = 0; i < db.size(); ++i) tree.Insert(db[i], i);

  EXPECT_EQ(tree.Size(), db.size());
  EXPECT_NO_THROW(tree.CheckInvariants());

  // Exactness against brute force for a few queries.
  for (size_t qi : {3ul, 50ul, 150ul}) {
    std::vector<std::pair<double, size_t>> expected;
    for (size_t i = 0; i < db.size(); ++i) {
      expected.emplace_back(dist::EgedMetric(db[qi], db[i]), i);
    }
    std::sort(expected.begin(), expected.end());
    auto got = tree.Knn(db[qi], 4);
    ASSERT_EQ(got.hits.size(), 4u);
    for (size_t r = 0; r < 4; ++r) {
      EXPECT_NEAR(got.hits[r].distance, expected[r].first, 1e-9)
          << "capacity " << capacity << " rank " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MTreeCapacityTest,
    ::testing::Combine(::testing::Values(4u, 8u, 16u, 32u),
                       ::testing::Values(Promotion::kRandom,
                                         Promotion::kSampling)));

}  // namespace
}  // namespace strg::mtree
