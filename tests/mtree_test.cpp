// ctest-labels: unit
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "distance/eged.h"
#include "mtree/mtree.h"
#include "synth/generator.h"

namespace strg::mtree {
namespace {

using dist::Sequence;

std::vector<Sequence> MakeDb(size_t items_per_cluster = 5,
                             uint64_t seed = 31) {
  synth::SynthParams params;
  params.items_per_cluster = items_per_cluster;
  params.noise_pct = 8.0;
  params.seed = seed;
  return synth::GenerateSyntheticOgs(params).Sequences(
      synth::SynthScaling());
}

std::vector<MTreeHit> BruteForce(const std::vector<Sequence>& db,
                                 const Sequence& q, size_t k) {
  std::vector<MTreeHit> hits;
  for (size_t i = 0; i < db.size(); ++i) {
    hits.push_back({i, dist::EgedMetric(q, db[i])});
  }
  std::sort(hits.begin(), hits.end(), [](const MTreeHit& a, const MTreeHit& b) {
    return a.distance < b.distance;
  });
  hits.resize(std::min(k, hits.size()));
  return hits;
}

class MTreePromotionTest : public ::testing::TestWithParam<Promotion> {};

TEST_P(MTreePromotionTest, InvariantsHoldAfterBulkInsert) {
  auto db = MakeDb(4);
  dist::EgedMetricDistance metric;
  MTreeParams params;
  params.promotion = GetParam();
  params.node_capacity = 8;
  MTree tree(&metric, params);
  for (size_t i = 0; i < db.size(); ++i) tree.Insert(db[i], i);
  EXPECT_EQ(tree.Size(), db.size());
  EXPECT_GT(tree.Height(), 1u);
  EXPECT_NO_THROW(tree.CheckInvariants());
}

TEST_P(MTreePromotionTest, KnnMatchesBruteForce) {
  auto db = MakeDb(4);
  dist::EgedMetricDistance metric;
  MTreeParams params;
  params.promotion = GetParam();
  MTree tree(&metric, params);
  for (size_t i = 0; i < db.size(); ++i) tree.Insert(db[i], i);

  auto queries = MakeDb(1, 77);
  for (size_t qi = 0; qi < 10; ++qi) {
    auto expected = BruteForce(db, queries[qi], 5);
    auto got = tree.Knn(queries[qi], 5);
    ASSERT_EQ(got.hits.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR(got.hits[i].distance, expected[i].distance, 1e-9)
          << "query " << qi << " rank " << i;
    }
  }
}

TEST_P(MTreePromotionTest, KnnPrunesAgainstLinearScan) {
  auto db = MakeDb(6);
  dist::EgedMetricDistance metric;
  MTreeParams params;
  params.promotion = GetParam();
  MTree tree(&metric, params);
  for (size_t i = 0; i < db.size(); ++i) tree.Insert(db[i], i);

  auto queries = MakeDb(1, 79);
  size_t total = 0;
  for (size_t qi = 0; qi < 10; ++qi) {
    total += tree.Knn(queries[qi], 5).distance_computations;
  }
  EXPECT_LT(total / 10, db.size());
}

INSTANTIATE_TEST_SUITE_P(Policies, MTreePromotionTest,
                         ::testing::Values(Promotion::kRandom,
                                           Promotion::kSampling));

TEST(MTree, EmptyTreeKnn) {
  dist::EgedMetricDistance metric;
  MTree tree(&metric);
  Sequence q(4, dist::FeatureVec{});
  EXPECT_TRUE(tree.Knn(q, 3).hits.empty());
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_EQ(tree.Height(), 1u);
}

TEST(MTree, SingleElement) {
  dist::EgedMetricDistance metric;
  MTree tree(&metric);
  Sequence s(4, dist::FeatureVec{});
  tree.Insert(s, 42);
  auto r = tree.Knn(s, 3);
  ASSERT_EQ(r.hits.size(), 1u);
  EXPECT_EQ(r.hits[0].id, 42u);
  EXPECT_NEAR(r.hits[0].distance, 0.0, 1e-12);
}

TEST(MTree, KnnReturnsKUniqueIds) {
  auto db = MakeDb(3);
  dist::EgedMetricDistance metric;
  MTree tree(&metric);
  for (size_t i = 0; i < db.size(); ++i) tree.Insert(db[i], i);
  auto r = tree.Knn(db[0], 9);
  ASSERT_EQ(r.hits.size(), 9u);
  std::set<size_t> ids;
  for (const MTreeHit& h : r.hits) ids.insert(h.id);
  EXPECT_EQ(ids.size(), 9u);
  EXPECT_EQ(r.hits[0].id, 0u);  // the object itself is its own 1-NN
}

TEST(MTree, RangeSearchFindsAllWithinRadius) {
  auto db = MakeDb(3);
  dist::EgedMetricDistance metric;
  MTree tree(&metric);
  for (size_t i = 0; i < db.size(); ++i) tree.Insert(db[i], i);

  const Sequence& q = db[7];
  double radius = 15.0;
  std::set<size_t> expected;
  for (size_t i = 0; i < db.size(); ++i) {
    if (dist::EgedMetric(q, db[i]) <= radius) expected.insert(i);
  }
  auto r = tree.RangeSearch(q, radius);
  std::set<size_t> got;
  for (const MTreeHit& h : r.hits) {
    got.insert(h.id);
    EXPECT_LE(h.distance, radius + 1e-9);
  }
  EXPECT_EQ(got, expected);
}

TEST(MTree, RangeSearchZeroRadiusFindsSelf) {
  auto db = MakeDb(2);
  dist::EgedMetricDistance metric;
  MTree tree(&metric);
  for (size_t i = 0; i < db.size(); ++i) tree.Insert(db[i], i);
  auto r = tree.RangeSearch(db[5], 1e-9);
  ASSERT_GE(r.hits.size(), 1u);
  EXPECT_EQ(r.hits[0].id, 5u);
}

TEST(MTree, SamplingBuildCostsMoreThanRandom) {
  // MT-SA evaluates candidate promotion pairs, so building must spend more
  // distance computations than MT-RA (this is the Figure 7a trade-off).
  auto db = MakeDb(4);
  dist::EgedMetricDistance metric;

  MTreeParams ra;
  ra.promotion = Promotion::kRandom;
  MTree tree_ra(&metric, ra);
  for (size_t i = 0; i < db.size(); ++i) tree_ra.Insert(db[i], i);

  MTreeParams sa;
  sa.promotion = Promotion::kSampling;
  MTree tree_sa(&metric, sa);
  for (size_t i = 0; i < db.size(); ++i) tree_sa.Insert(db[i], i);

  EXPECT_GT(tree_sa.TotalDistanceComputations(),
            tree_ra.TotalDistanceComputations());
}

TEST(MTree, DuplicateObjectsSupported) {
  dist::EgedMetricDistance metric;
  MTreeParams params;
  params.node_capacity = 4;
  MTree tree(&metric, params);
  Sequence s(5, dist::FeatureVec{});
  for (size_t i = 0; i < 20; ++i) tree.Insert(s, i);
  EXPECT_NO_THROW(tree.CheckInvariants());
  auto r = tree.Knn(s, 20);
  EXPECT_EQ(r.hits.size(), 20u);
  for (const MTreeHit& h : r.hits) EXPECT_NEAR(h.distance, 0.0, 1e-12);
}

}  // namespace
}  // namespace strg::mtree
