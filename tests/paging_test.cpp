// ctest-labels: paging
//
// Out-of-core storage engine: page file format (CRC, allocator, free list),
// buffer cache (LRU, pins, copy-on-write, write-back, overload), the paged
// record layer (inline + overflow-chained records, delete, reopen, stats),
// and the acceptance contract that a paged index answers queries
// bit-identically to the in-RAM index at every cache size.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "core/video_database.h"
#include "distance/sequence.h"
#include "index/strg_index.h"
#include "storage/pager/buffer_cache.h"
#include "storage/pager/page_file.h"
#include "storage/pager/paged_record_store.h"
#include "storage/pager/storage_params.h"
#include "util/random.h"
#include "video/scenes.h"

namespace strg::storage {
namespace {

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

/// Flips one byte of `path` at `offset` (simulates a torn write / bit flip).
void CorruptByteAt(const std::string& path, size_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c ^= 0x5A;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

// ---------------------------------------------------------------- PageFile

TEST(PageFile, CreateWriteReadReopen) {
  std::string path = TempPath("pf_roundtrip.pages");
  auto file = PageFile::Create(path, 256).value();
  EXPECT_EQ(file->page_size(), 256u);
  EXPECT_EQ(file->payload_capacity(), 256u - PageFile::kPageHeaderBytes);
  EXPECT_EQ(file->num_pages(), 1u);  // header page only

  uint32_t p = file->Allocate().value();
  EXPECT_EQ(p, 1u);
  ASSERT_TRUE(file->WritePage(p, PageFile::kDataPage, 7, "paged bytes").ok());
  file->set_root(42);
  ASSERT_TRUE(file->Sync().ok());
  file.reset();

  auto back = PageFile::Open(path).value();
  EXPECT_EQ(back->page_size(), 256u);
  EXPECT_EQ(back->num_pages(), 2u);
  EXPECT_EQ(back->root(), 42u);
  PageFile::PageView view;
  ASSERT_TRUE(back->ReadPage(p, &view).ok());
  EXPECT_EQ(view.type, PageFile::kDataPage);
  EXPECT_EQ(view.next_page, 7u);
  EXPECT_EQ(view.payload, "paged bytes");
  std::remove(path.c_str());
}

TEST(PageFile, CorruptHeaderFailsOpen) {
  std::string path = TempPath("pf_badheader.pages");
  PageFile::Create(path, 128).value()->Sync().ThrowIfError();
  CorruptByteAt(path, 20);  // inside the header page's payload
  auto opened = PageFile::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), api::StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(PageFile, TornDataPageIsCorruption) {
  std::string path = TempPath("pf_torn.pages");
  auto file = PageFile::Create(path, 128).value();
  uint32_t p = file->Allocate().value();
  ASSERT_TRUE(file->WritePage(p, PageFile::kDataPage, PageFile::kNoPage,
                              "torn-write victim").ok());
  ASSERT_TRUE(file->Sync().ok());
  file.reset();

  CorruptByteAt(path, 128 + 20);  // a payload byte of page 1
  auto back = PageFile::Open(path).value();
  PageFile::PageView view;
  api::Status st = back->ReadPage(p, &view);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), api::StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(PageFile, ReadPastAllocatedRangeFails) {
  std::string path = TempPath("pf_oob.pages");
  auto file = PageFile::Create(path, 128).value();
  PageFile::PageView view;
  EXPECT_FALSE(file->ReadPage(99, &view).ok());
  std::remove(path.c_str());
}

TEST(PageFile, FreeListReusesPages) {
  std::string path = TempPath("pf_freelist.pages");
  auto file = PageFile::Create(path, 128).value();
  uint32_t a = file->Allocate().value();
  uint32_t b = file->Allocate().value();
  ASSERT_TRUE(file->WritePage(a, PageFile::kDataPage, PageFile::kNoPage,
                              "a").ok());
  ASSERT_TRUE(file->WritePage(b, PageFile::kDataPage, PageFile::kNoPage,
                              "b").ok());
  EXPECT_EQ(file->free_count(), 0u);

  ASSERT_TRUE(file->Free(a).ok());
  EXPECT_EQ(file->free_count(), 1u);
  EXPECT_EQ(file->free_head(), a);
  // A freed page is written as kFreePage — readable, typed, CRC-valid.
  PageFile::PageView view;
  ASSERT_TRUE(file->ReadPage(a, &view).ok());
  EXPECT_EQ(view.type, PageFile::kFreePage);

  // The next allocation pops the free list instead of growing the file.
  uint64_t pages_before = file->num_pages();
  EXPECT_EQ(file->Allocate().value(), a);
  EXPECT_EQ(file->num_pages(), pages_before);
  EXPECT_EQ(file->free_count(), 0u);

  // Free-list state survives reopen.
  ASSERT_TRUE(file->Free(b).ok());
  ASSERT_TRUE(file->Sync().ok());
  file.reset();
  auto back = PageFile::Open(path).value();
  EXPECT_EQ(back->free_count(), 1u);
  EXPECT_EQ(back->Allocate().value(), b);
  std::remove(path.c_str());
}

// ------------------------------------------------------------- BufferCache

/// A 2-frame single-shard cache over a file with `pages` pre-written pages
/// (page i holds payload "page-<i>").
struct SmallCacheFixture {
  explicit SmallCacheFixture(const std::string& name, int pages,
                             uint64_t frames = 2) {
    path = TempPath(name);
    file = PageFile::Create(path, 128).value();
    for (int i = 1; i <= pages; ++i) {
      uint32_t p = file->Allocate().value();
      EXPECT_TRUE(file->WritePage(p, PageFile::kDataPage, PageFile::kNoPage,
                                  "page-" + std::to_string(i)).ok());
    }
    cache = std::make_unique<BufferCache>(file.get(), frames * 128, 1);
  }
  ~SmallCacheFixture() { std::remove(path.c_str()); }

  std::string path;
  std::unique_ptr<PageFile> file;
  std::unique_ptr<BufferCache> cache;
};

TEST(BufferCache, HitAndMissCounters) {
  SmallCacheFixture fx("bc_counters.pages", 2);
  { auto ref = fx.cache->Pin(1).value(); EXPECT_EQ(ref.payload(), "page-1"); }
  { auto ref = fx.cache->Pin(1).value(); EXPECT_EQ(ref.payload(), "page-1"); }
  BufferCacheStats s = fx.cache->stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.pinned_pages, 0u);  // both refs released
  EXPECT_DOUBLE_EQ(s.HitRate(), 0.5);
}

TEST(BufferCache, EvictsLeastRecentlyUsed) {
  SmallCacheFixture fx("bc_lru.pages", 3);
  EXPECT_EQ(fx.cache->num_frames(), 2u);
  { auto r = fx.cache->Pin(1).value(); }
  { auto r = fx.cache->Pin(2).value(); }
  // Third distinct page exceeds the budget: page 1 (LRU) is evicted.
  { auto r = fx.cache->Pin(3).value(); EXPECT_EQ(r.payload(), "page-3"); }
  EXPECT_EQ(fx.cache->stats().evictions, 1u);
  { auto r = fx.cache->Pin(2).value(); }  // still resident
  EXPECT_EQ(fx.cache->stats().hits, 1u);
  { auto r = fx.cache->Pin(1).value(); }  // was evicted, misses again
  EXPECT_EQ(fx.cache->stats().misses, 4u);
}

TEST(BufferCache, PinnedFramesAreNeverEvictedAndOverloadWhenExhausted) {
  SmallCacheFixture fx("bc_pinned.pages", 3);
  auto a = fx.cache->Pin(1).value();
  auto b = fx.cache->Pin(2).value();
  EXPECT_EQ(fx.cache->stats().pinned_pages, 2u);

  // Every frame is pinned: the cache budget is a hard bound, so the third
  // pin sheds load instead of growing.
  auto c = fx.cache->Pin(3);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), api::StatusCode::kOverloaded);

  // Releasing one pin frees a frame for the same request.
  b = BufferCache::PageRef();
  auto again = fx.cache->Pin(3);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().payload(), "page-3");
  EXPECT_EQ(a.payload(), "page-1");  // survivor pin untouched
}

TEST(BufferCache, WriteBackPersistsDirtyFrames) {
  SmallCacheFixture fx("bc_writeback.pages", 1);
  ASSERT_TRUE(fx.cache->Write(1, PageFile::kDataPage, PageFile::kNoPage,
                              "dirty bytes").ok());
  // The write lives in the cache until flushed.
  ASSERT_TRUE(fx.cache->FlushAll().ok());
  EXPECT_EQ(fx.cache->stats().write_backs, 1u);
  PageFile::PageView view;
  ASSERT_TRUE(fx.file->ReadPage(1, &view).ok());
  EXPECT_EQ(view.payload, "dirty bytes");
}

TEST(BufferCache, CopyOnWriteKeepsPinnedViewImmutable) {
  SmallCacheFixture fx("bc_cow.pages", 2);
  auto old_ref = fx.cache->Pin(1).value();
  ASSERT_EQ(old_ref.payload(), "page-1");

  // Writing a pinned page must not mutate the live reader's view: the
  // bytes go to a fresh frame and the page is remapped.
  ASSERT_TRUE(fx.cache->Write(1, PageFile::kDataPage, PageFile::kNoPage,
                              "version-2").ok());
  EXPECT_EQ(old_ref.payload(), "page-1");
  auto new_ref = fx.cache->Pin(1).value();
  EXPECT_EQ(new_ref.payload(), "version-2");

  // The orphaned frame returns to the pool when its last pin drops; the
  // shard then has room for a third resident page again.
  old_ref = BufferCache::PageRef();
  new_ref = BufferCache::PageRef();
  EXPECT_TRUE(fx.cache->Pin(2).ok());
  EXPECT_EQ(fx.cache->stats().pinned_pages, 0u);
}

TEST(BufferCache, InvalidateDropsWithoutWriteBack) {
  SmallCacheFixture fx("bc_invalidate.pages", 2);
  ASSERT_TRUE(fx.cache->Write(1, PageFile::kDataPage, PageFile::kNoPage,
                              "never-persisted").ok());
  fx.cache->Invalidate(1);
  // The dirty bytes were dropped, not written back: the next pin reads the
  // original disk contents.
  auto ref = fx.cache->Pin(1).value();
  EXPECT_EQ(ref.payload(), "page-1");
  EXPECT_EQ(fx.cache->stats().write_backs, 0u);
}

TEST(BufferCache, ConcurrentPinUnpinWithWriterIsConsistent) {
  // Readers hammer pins while a writer rewrites pages through the cache.
  // Every observed payload must be one complete version — homogeneous
  // repeated version characters — never a torn mix. Run under TSan/ASan by
  // scripts/check.sh.
  constexpr int kPages = 6;
  constexpr int kVersions = 40;
  constexpr size_t kLen = 64;
  SmallCacheFixture fx("bc_threads.pages", kPages, /*frames=*/4);

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&fx, &stop, &failed, t] {
      Rng rng(1000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        uint32_t page = 1 + static_cast<uint32_t>(rng.Uniform(0, kPages - 1));
        auto ref = fx.cache->Pin(page);
        if (!ref.ok()) continue;  // all frames transiently pinned
        std::string_view payload = ref.value().payload();
        // Seed content ("page-N") predates the writer; versions written by
        // the writer are kLen homogeneous bytes — a mixed view is a torn
        // read through the pin protocol.
        if (payload.size() != kLen) continue;
        for (char c : payload) {
          if (c != payload[0]) failed.store(true);
        }
      }
    });
  }

  for (int v = 0; v < kVersions; ++v) {
    std::string payload(kLen, static_cast<char>('a' + (v % 26)));
    for (uint32_t page = 1; page <= kPages; ++page) {
      ASSERT_TRUE(fx.cache->Write(page, PageFile::kDataPage,
                                  PageFile::kNoPage, payload).ok());
    }
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(fx.cache->stats().pinned_pages, 0u);
  ASSERT_TRUE(fx.cache->FlushAll().ok());
}

// -------------------------------------------------------- PagedRecordStore

StorageParams SmallStoreParams() {
  StorageParams p;
  p.paged = true;
  p.page_size = 256;
  p.cache_bytes = 8 * 256;
  p.cache_shards = 2;
  return p;
}

TEST(PagedRecordStore, InlineRoundTripPreservesBytesAndType) {
  std::string path = TempPath("prs_inline.pages");
  auto store = PagedRecordStore::Create(path, SmallStoreParams()).value();
  uint64_t a = store->Append(kRecOgSequence, "first record").value();
  uint64_t b = store->Append(kRecBackground, "second record").value();
  EXPECT_NE(a, b);

  auto ra = store->Read(a).value();
  EXPECT_EQ(ra.bytes(), "first record");
  EXPECT_EQ(ra.record_type(), kRecOgSequence);
  auto rb = store->Read(b).value();
  EXPECT_EQ(rb.bytes(), "second record");
  EXPECT_EQ(rb.record_type(), kRecBackground);
  std::remove(path.c_str());
}

TEST(PagedRecordStore, OverflowChainRoundTrip) {
  std::string path = TempPath("prs_overflow.pages");
  auto store = PagedRecordStore::Create(path, SmallStoreParams()).value();
  // ~10 pages worth of payload: forces a chain through overflow pages.
  Rng rng(7);
  std::string big(2500, '\0');
  for (char& c : big) c = static_cast<char>(rng.Uniform(0, 255));
  uint64_t id = store->Append(kRecIndexNode, big).value();
  uint64_t small_id = store->Append(kRecOgSequence, "tiny").value();

  auto ref = store->Read(id).value();
  EXPECT_EQ(ref.bytes(), big);
  EXPECT_EQ(ref.record_type(), kRecIndexNode);
  EXPECT_EQ(store->Read(small_id).value().bytes(), "tiny");

  ASSERT_TRUE(store->Commit().ok());
  PageFileStats stats = ComputePageFileStats(path).value();
  EXPECT_GE(stats.overflow_pages, 10u);
  std::remove(path.c_str());
}

TEST(PagedRecordStore, DeleteFreesRecordAndOverflowChain) {
  std::string path = TempPath("prs_delete.pages");
  auto store = PagedRecordStore::Create(path, SmallStoreParams()).value();
  std::string big(2000, 'x');
  uint64_t chained = store->Append(kRecIndexNode, big).value();
  uint64_t keeper = store->Append(kRecOgSequence, "keep me").value();

  ASSERT_TRUE(store->Delete(chained).ok());
  auto gone = store->Read(chained);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), api::StatusCode::kNotFound);
  // The overflow chain went back to the allocator.
  EXPECT_GE(store->file().free_count(), 8u);
  // Unrelated records are untouched, and the freed pages are reusable.
  EXPECT_EQ(store->Read(keeper).value().bytes(), "keep me");
  uint64_t pages_before = store->file().num_pages();
  uint64_t again = store->Append(kRecIndexNode, big).value();
  EXPECT_EQ(store->file().num_pages(), pages_before);
  EXPECT_EQ(store->Read(again).value().bytes(), big);
  std::remove(path.c_str());
}

TEST(PagedRecordStore, DeleteReturnsFullyDeadPageToFreeList) {
  std::string path = TempPath("prs_deadpage.pages");
  auto store = PagedRecordStore::Create(path, SmallStoreParams()).value();
  // Each 200-byte record nearly fills a 240-byte page payload, so the two
  // records land on different pages and the first page is non-tail.
  uint64_t a = store->Append(kRecOgSequence, std::string(200, 'a')).value();
  uint64_t b = store->Append(kRecOgSequence, std::string(200, 'b')).value();
  EXPECT_EQ(store->file().free_count(), 0u);

  ASSERT_TRUE(store->Delete(a).ok());
  EXPECT_EQ(store->file().free_count(), 1u);
  EXPECT_EQ(store->Read(b).value().bytes(), std::string(200, 'b'));
  std::remove(path.c_str());
}

TEST(PagedRecordStore, ReopenSealsTailAndKeepsRecordIds) {
  std::string path = TempPath("prs_reopen.pages");
  StorageParams params = SmallStoreParams();
  auto store = PagedRecordStore::Create(path, params).value();
  uint64_t a = store->Append(kRecOgSequence, "before crash").value();
  store->SetRoot(a);
  ASSERT_TRUE(store->Commit().ok());
  store.reset();

  auto back = PagedRecordStore::Open(path, params).value();
  EXPECT_EQ(back->Root(), a);
  EXPECT_EQ(back->Read(a).value().bytes(), "before crash");
  // The old tail is sealed: a new append starts a fresh page, so a torn
  // pre-crash tail can never be extended.
  uint64_t b = back->Append(kRecOgSequence, "after reopen").value();
  EXPECT_NE(b >> 16, a >> 16);
  EXPECT_EQ(back->Read(a).value().bytes(), "before crash");
  EXPECT_EQ(back->Read(b).value().bytes(), "after reopen");
  std::remove(path.c_str());
}

TEST(PagedRecordStore, ReadOfBogusIdIsNotFound) {
  std::string path = TempPath("prs_bogus.pages");
  auto store = PagedRecordStore::Create(path, SmallStoreParams()).value();
  ASSERT_TRUE(store->Append(kRecOgSequence, "only record").ok());
  auto missing = store->Read((1ull << 16) | 55);  // page 1, nonexistent slot
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), api::StatusCode::kNotFound);
  EXPECT_FALSE(store->Read(PagedRecordStore::kNoRecord).ok());
  std::remove(path.c_str());
}

TEST(PagedRecordStore, ComputePageFileStatsAuditsOccupancy) {
  std::string path = TempPath("prs_stats.pages");
  auto store = PagedRecordStore::Create(path, SmallStoreParams()).value();
  store->Append(kRecOgSequence, std::string(50, 's')).value();
  store->Append(kRecOgSequence, std::string(60, 's')).value();
  uint64_t dead = store->Append(kRecBackground, std::string(40, 'b')).value();
  uint64_t big = store->Append(kRecIndexNode, std::string(1000, 'n')).value();
  ASSERT_TRUE(store->Delete(dead).ok());
  store->SetRoot(big);
  ASSERT_TRUE(store->Commit().ok());

  PageFileStats stats = ComputePageFileStats(path).value();
  EXPECT_EQ(stats.page_size, 256u);
  EXPECT_EQ(stats.root, big);
  EXPECT_EQ(stats.free_list_len, stats.free_count);
  EXPECT_EQ(stats.dead_slots, 1u);
  EXPECT_GE(stats.data_pages, 1u);
  EXPECT_GE(stats.overflow_pages, 4u);

  uint64_t og_live = 0, og_bytes = 0, node_bytes = 0, bg_live = 0;
  for (const auto& t : stats.by_type) {
    if (t.record_type == kRecOgSequence) {
      og_live = t.live_records;
      og_bytes = t.live_bytes;
    }
    if (t.record_type == kRecIndexNode) node_bytes = t.live_bytes;
    if (t.record_type == kRecBackground) bg_live = t.live_records;
  }
  EXPECT_EQ(og_live, 2u);
  EXPECT_EQ(og_bytes, 110u);
  EXPECT_EQ(node_bytes, 1000u);
  EXPECT_EQ(bg_live, 0u);  // the deleted record no longer counts
  std::remove(path.c_str());
}

TEST(PagedRecordStore, StatsDetectCorruptPage) {
  std::string path = TempPath("prs_stats_corrupt.pages");
  auto store = PagedRecordStore::Create(path, SmallStoreParams()).value();
  store->Append(kRecOgSequence, std::string(100, 'q')).value();
  ASSERT_TRUE(store->Commit().ok());
  store.reset();

  CorruptByteAt(path, 256 + 30);
  auto stats = ComputePageFileStats(path);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), api::StatusCode::kCorruption);
  std::remove(path.c_str());
}

// -------------------------------------------- paged index ≡ in-RAM index

/// One processed synthetic segment shared by the equivalence cases.
const api::SegmentResult& LabSegment() {
  static const api::SegmentResult* segment = [] {
    video::SceneParams sp;
    sp.num_objects = 5;
    sp.spawn_gap = 20;
    sp.noise_stddev = 0.0;
    api::PipelineParams pp;
    pp.segmenter.use_mean_shift = false;
    return new api::SegmentResult(
        api::ProcessScene(video::MakeLabScene(sp), pp));
  }();
  return *segment;
}

void ExpectSameHits(const std::vector<api::VideoDatabase::QueryHit>& want,
                    const std::vector<api::VideoDatabase::QueryHit>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].og_id, got[i].og_id);
    EXPECT_EQ(want[i].video, got[i].video);
    // Bit-identical, not approximately equal: the paged path re-decodes the
    // exact doubles the in-RAM path holds.
    EXPECT_EQ(want[i].distance, got[i].distance);
  }
}

TEST(PagedIndex, QueriesBitIdenticalToInRamAcrossCacheSizes) {
  const api::SegmentResult& segment = LabSegment();
  index::StrgIndexParams ip;
  ip.num_clusters = 2;

  api::VideoDatabase ram(ip);
  ram.AddVideo("lab", segment);
  ASSERT_GE(ram.NumObjectGraphs(), 3u);
  const core::Og& probe = segment.decomposition.object_graphs[0];
  dist::Sequence probe_seq = dist::OgToSequence(probe, segment.Scaling());
  auto want_knn = ram.FindSimilar(probe, 5, segment.Scaling());
  ASSERT_FALSE(want_knn.empty());
  double radius = want_knn.back().distance + 1e-6;
  auto want_range = ram.FindWithinRadius(probe_seq, radius);
  ASSERT_FALSE(want_range.empty());

  struct Budget {
    const char* name;
    uint64_t cache_bytes;
    size_t shards;
  };
  // Tiny = one frame (every fetch misses), medium = a few frames (real
  // eviction traffic), infinite = everything stays resident.
  const Budget budgets[] = {{"tiny", 256, 1},
                            {"medium", 4 * 256, 2},
                            {"infinite", 8ull << 20, 4}};
  for (const Budget& budget : budgets) {
    SCOPED_TRACE(budget.name);
    StorageParams params = SmallStoreParams();
    params.cache_bytes = budget.cache_bytes;
    params.cache_shards = budget.shards;
    std::string path = TempPath(std::string("prs_eq_") + budget.name +
                                ".pages");
    auto store = PagedRecordStore::Create(path, params).value();

    index::StrgIndexParams paged_params = ip;
    paged_params.paged_store = store.get();
    api::VideoDatabase paged(paged_params);
    paged.AddVideo("lab", segment);

    ExpectSameHits(want_knn, paged.FindSimilar(probe, 5, segment.Scaling()));
    ExpectSameHits(want_range, paged.FindWithinRadius(probe_seq, radius));
    // The paged path actually ran through the cache.
    BufferCacheStats cs = store->cache_stats();
    EXPECT_GT(cs.hits + cs.misses, 0u);
    EXPECT_EQ(cs.pinned_pages, 0u);
    std::remove(path.c_str());
  }
}

TEST(PagedIndex, TinyCacheStaysWithinResidentBudget) {
  const api::SegmentResult& segment = LabSegment();
  StorageParams params = SmallStoreParams();
  params.cache_bytes = 2 * 256;
  params.cache_shards = 1;
  std::string path = TempPath("prs_budget.pages");
  auto store = PagedRecordStore::Create(path, params).value();

  index::StrgIndexParams ip;
  ip.num_clusters = 2;
  ip.paged_store = store.get();
  api::VideoDatabase db(ip);
  db.AddVideo("lab", segment);

  // The backing file far exceeds the cache budget, yet resident memory is
  // exactly the configured frame pool — the out-of-core contract.
  EXPECT_GT(store->file().num_pages() * 256, params.cache_bytes);
  EXPECT_EQ(store->cache()->resident_bytes(), 2 * 256u);
  const core::Og& probe = segment.decomposition.object_graphs[0];
  EXPECT_FALSE(db.FindSimilar(probe, 3, segment.Scaling()).empty());
  EXPECT_GT(store->cache_stats().evictions, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace strg::storage
