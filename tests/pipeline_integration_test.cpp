// ctest-labels: integration
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "video/scenes.h"

namespace strg::api {
namespace {

PipelineParams FastPipeline() {
  PipelineParams p;
  p.segmenter.use_mean_shift = false;  // synthetic frames are clean enough
  return p;
}

video::SceneSpec SmallLab(int num_objects, uint64_t seed = 7) {
  video::SceneParams sp;
  sp.num_objects = num_objects;
  sp.noise_stddev = 0.0;
  sp.seed = seed;
  return video::MakeLabScene(sp);
}

TEST(Pipeline, ExtractsOneOgPerSceneObject) {
  // Non-overlapping objects: spawn gap >= lifetime.
  video::SceneParams sp;
  sp.num_objects = 3;
  sp.object_lifetime = 16;
  sp.spawn_gap = 20;
  sp.noise_stddev = 0.0;
  video::SceneSpec scene = video::MakeLabScene(sp);

  SegmentResult result = ProcessScene(scene, FastPipeline());
  EXPECT_EQ(result.num_frames, static_cast<size_t>(scene.num_frames));
  // Each person (3 co-moving parts) should merge into one OG.
  EXPECT_EQ(result.decomposition.object_graphs.size(), 3u);
  for (const core::Og& og : result.decomposition.object_graphs) {
    EXPECT_GE(og.member_orgs.size(), 2u);  // parts were merged
    EXPECT_GE(og.Length(), 8u);            // tracked over most of its life
  }
}

TEST(Pipeline, BackgroundGraphIsSubstantial) {
  SegmentResult result = ProcessScene(SmallLab(2), FastPipeline());
  // Checker tiles + furniture: the BG must keep several regions.
  EXPECT_GE(result.decomposition.background.rag.NumNodes(), 4u);
}

TEST(Pipeline, OgSequencesScaleWithFrameGeometry) {
  SegmentResult result = ProcessScene(SmallLab(2), FastPipeline());
  auto seqs = result.ObjectSequences();
  ASSERT_EQ(seqs.size(), result.decomposition.object_graphs.size());
  for (const auto& seq : seqs) {
    for (const auto& v : seq) {
      // Normalized features stay in sane ranges.
      for (double x : v) {
        EXPECT_GE(x, -1e-9);
        EXPECT_LE(x, 20.0);
      }
    }
  }
}

TEST(Pipeline, StreamingMatchesBatch) {
  video::SceneSpec scene = SmallLab(2);
  VideoPipeline streaming(FastPipeline());
  for (int t = 0; t < scene.num_frames; ++t) {
    EXPECT_EQ(streaming.PushFrame(video::RenderFrame(scene, t)), t);
  }
  SegmentResult a = streaming.Finish();
  SegmentResult b = ProcessScene(scene, FastPipeline());
  EXPECT_EQ(a.num_frames, b.num_frames);
  EXPECT_EQ(a.decomposition.object_graphs.size(),
            b.decomposition.object_graphs.size());
  EXPECT_EQ(a.strg_size_bytes, b.strg_size_bytes);
}

TEST(Pipeline, WorksWithMeanShiftOnNoisyVideo) {
  video::SceneParams sp;
  sp.num_objects = 1;
  sp.object_lifetime = 12;
  sp.noise_stddev = 2.5;
  video::SceneSpec scene = video::MakeLabScene(sp);
  PipelineParams params;  // mean-shift enabled
  SegmentResult result = ProcessScene(scene, params);
  EXPECT_GE(result.decomposition.object_graphs.size(), 1u);
}

TEST(Pipeline, Equation9SizeRelation) {
  SegmentResult result = ProcessScene(SmallLab(2), FastPipeline());
  size_t eq9 = core::PaperStrgSizeBytes(result.decomposition,
                                        result.num_frames);
  // The per-frame raw STRG and the Eq. 9 accounting are both dominated by
  // N copies of the background; they agree within an order of magnitude.
  EXPECT_GT(eq9, 0u);
  EXPECT_GT(result.strg_size_bytes, 0u);
}

TEST(Pipeline, TrafficSceneProducesHorizontalOgs) {
  video::SceneParams sp;
  sp.num_objects = 3;
  sp.object_lifetime = 16;
  sp.spawn_gap = 20;
  sp.noise_stddev = 0.0;
  video::SceneSpec scene = video::MakeTrafficScene(sp);
  SegmentResult result = ProcessScene(scene, FastPipeline());
  ASSERT_GE(result.decomposition.object_graphs.size(), 2u);
  for (const core::Og& og : result.decomposition.object_graphs) {
    double dy = og.sequence.back().cy - og.sequence.front().cy;
    double dx = og.sequence.back().cx - og.sequence.front().cx;
    EXPECT_GT(std::abs(dx), std::abs(dy));  // vehicles move horizontally
  }
}

}  // namespace
}  // namespace strg::api
