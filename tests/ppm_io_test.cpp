// ctest-labels: unit
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "video/ppm_io.h"
#include "video/renderer.h"
#include "video/scenes.h"

namespace strg::video {
namespace {

TEST(PpmIo, ParsesAsciiP3) {
  std::string ppm = "P3\n2 1\n255\n255 0 0 0 255 0\n";
  Frame f = ParsePpm(ppm);
  EXPECT_EQ(f.width(), 2);
  EXPECT_EQ(f.height(), 1);
  EXPECT_EQ(f.At(0, 0), (Rgb{255, 0, 0}));
  EXPECT_EQ(f.At(1, 0), (Rgb{0, 255, 0}));
}

TEST(PpmIo, ParsesCommentsAndWhitespace) {
  std::string ppm = "P3 # magic\n# a comment line\n 2   2 \n255\n"
                    "1 2 3 4 5 6\n7 8 9 10 11 12\n";
  Frame f = ParsePpm(ppm);
  EXPECT_EQ(f.At(1, 1), (Rgb{10, 11, 12}));
}

TEST(PpmIo, RoundTripsFrameToPpmOutput) {
  SceneParams sp;
  sp.num_objects = 1;
  Frame original = RenderFrame(MakeLabScene(sp), 5);
  Frame back = ParsePpm(original.ToPpm());
  EXPECT_EQ(back.pixels(), original.pixels());
}

TEST(PpmIo, BinaryP6FileRoundTrip) {
  SceneParams sp;
  sp.num_objects = 2;
  Frame original = RenderFrame(MakeTrafficScene(sp), 8);
  std::string path = ::testing::TempDir() + "/strg_ppm_test.ppm";
  SavePpm(original, path);
  Frame back = LoadPpm(path);
  EXPECT_EQ(back.pixels(), original.pixels());
  std::remove(path.c_str());
}

TEST(PpmIo, RejectsMalformedInput) {
  EXPECT_THROW(ParsePpm("P5\n2 2\n255\n"), std::runtime_error);   // PGM
  EXPECT_THROW(ParsePpm("P3\n2 2\n70000\n"), std::runtime_error);  // 16-bit
  EXPECT_THROW(ParsePpm("P3\n2 2\n255\n1 2"), std::runtime_error);  // short
  EXPECT_THROW(ParsePpm("P6\n4 4\n255\nxy"), std::runtime_error);  // short
  EXPECT_THROW(ParsePpm(""), std::runtime_error);
}

TEST(PpmIo, LoadsDirectorySorted) {
  std::string dir = ::testing::TempDir() + "/strg_ppm_seq";
  std::filesystem::create_directories(dir);
  SceneParams sp;
  sp.num_objects = 1;
  SceneSpec scene = MakeLabScene(sp);
  for (int t = 0; t < 3; ++t) {
    char name[64];
    std::snprintf(name, sizeof(name), "%s/frame%03d.ppm", dir.c_str(), t);
    SavePpm(RenderFrame(scene, t), name);
  }
  auto frames = LoadPpmDirectory(dir);
  ASSERT_EQ(frames.size(), 3u);
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(frames[static_cast<size_t>(t)].pixels(),
              RenderFrame(scene, t).pixels());
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace strg::video
