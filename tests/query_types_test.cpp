// ctest-labels: unit
#include <gtest/gtest.h>

#include "core/video_database.h"
#include "video/scenes.h"

namespace strg::api {
namespace {

PipelineParams FastPipeline() {
  PipelineParams p;
  p.segmenter.use_mean_shift = false;
  return p;
}

SegmentResult ProcessLab(int num_objects, uint64_t seed) {
  video::SceneParams sp;
  sp.num_objects = num_objects;
  sp.object_lifetime = 16;
  sp.spawn_gap = 20;
  sp.noise_stddev = 0.0;
  sp.seed = seed;
  return ProcessScene(video::MakeLabScene(sp), FastPipeline());
}

index::StrgIndexParams SmallIndex() {
  index::StrgIndexParams p;
  p.num_clusters = 2;
  p.cluster_params.max_iterations = 6;
  return p;
}

TEST(VideoDatabaseQueries, FindWithinRadiusReturnsSelfAtZero) {
  VideoDatabase db(SmallIndex());
  SegmentResult lab = ProcessLab(4, 7);
  db.AddVideo("lab", lab);
  auto seq = dist::OgToSequence(lab.decomposition.object_graphs[1],
                                lab.Scaling());
  auto hits = db.FindWithinRadius(seq, 1e-9);
  ASSERT_GE(hits.size(), 1u);
  EXPECT_EQ(hits[0].video, "lab");
  EXPECT_NEAR(hits[0].distance, 0.0, 1e-9);
}

TEST(VideoDatabaseQueries, RadiusGrowsResultSet) {
  VideoDatabase db(SmallIndex());
  SegmentResult lab = ProcessLab(5, 7);
  db.AddVideo("lab", lab);
  auto seq = dist::OgToSequence(lab.decomposition.object_graphs[0],
                                lab.Scaling());
  auto small = db.FindWithinRadius(seq, 1.0);
  auto large = db.FindWithinRadius(seq, 1e9);
  EXPECT_LE(small.size(), large.size());
  EXPECT_EQ(large.size(), db.NumObjectGraphs());
}

TEST(VideoDatabaseQueries, FindActiveIntersectsLifetimes) {
  VideoDatabase db(SmallIndex());
  SegmentResult lab = ProcessLab(5, 7);  // objects start at 0,20,40,60,80
  db.AddVideo("lab", lab);

  // A window covering only the second object's lifetime.
  auto hits = db.FindActive("lab", 22, 30);
  ASSERT_GE(hits.size(), 1u);
  for (const auto& h : hits) {
    int end = h.start_frame + static_cast<int>(h.length) - 1;
    EXPECT_LE(h.start_frame, 30);
    EXPECT_GE(end, 22);
  }

  // A window before anything moves.
  EXPECT_TRUE(db.FindActive("lab", -10, -1).empty());
  // Unknown video name.
  EXPECT_TRUE(db.FindActive("nope", 0, 100).empty());
}

TEST(VideoDatabaseQueries, FindActiveFiltersByVideo) {
  VideoDatabase db(SmallIndex());
  SegmentResult lab1 = ProcessLab(3, 7);
  SegmentResult lab2 = ProcessLab(3, 9);
  db.AddVideo("a", lab1);
  db.AddVideo("b", lab2);
  auto hits = db.FindActive("b", 0, 10000);
  EXPECT_EQ(hits.size(), lab2.decomposition.object_graphs.size());
  for (const auto& h : hits) EXPECT_EQ(h.video, "b");
}

}  // namespace
}  // namespace strg::api
