// ctest-labels: unit
#include <gtest/gtest.h>

#include <set>

#include "distance/eged.h"
#include "index/strg_index.h"
#include "synth/generator.h"

namespace strg::index {
namespace {

using dist::Sequence;

std::vector<Sequence> MakeDb(uint64_t seed = 51) {
  synth::SynthParams params;
  params.items_per_cluster = 5;
  params.noise_pct = 8.0;
  params.seed = seed;
  return synth::GenerateSyntheticOgs(params).Sequences(
      synth::SynthScaling());
}

StrgIndex BuildIndex(const std::vector<Sequence>& db) {
  StrgIndexParams params;
  params.num_clusters = 12;
  params.cluster_params.max_iterations = 6;
  StrgIndex idx(params);
  idx.AddSegment(core::BackgroundGraph{}, db);
  return idx;
}

TEST(RangeSearch, MatchesBruteForce) {
  auto db = MakeDb();
  StrgIndex idx = BuildIndex(db);
  for (double radius : {5.0, 20.0, 60.0}) {
    for (size_t qi : {0ul, 17ul, 101ul}) {
      std::set<size_t> expected;
      for (size_t i = 0; i < db.size(); ++i) {
        if (dist::EgedMetric(db[qi], db[i]) <= radius) expected.insert(i);
      }
      auto result = idx.RangeSearch(db[qi], radius);
      std::set<size_t> got;
      for (const KnnHit& h : result.hits) {
        got.insert(h.og_id);
        EXPECT_LE(h.distance, radius + 1e-9);
      }
      EXPECT_EQ(got, expected) << "radius " << radius << " query " << qi;
    }
  }
}

TEST(RangeSearch, ResultsSortedAscending) {
  auto db = MakeDb();
  StrgIndex idx = BuildIndex(db);
  auto result = idx.RangeSearch(db[3], 50.0);
  double prev = -1.0;
  for (const KnnHit& h : result.hits) {
    EXPECT_GE(h.distance, prev);
    prev = h.distance;
  }
  ASSERT_FALSE(result.hits.empty());
  EXPECT_EQ(result.hits[0].og_id, 3u);  // the query object itself
}

TEST(RangeSearch, ZeroRadiusFindsExactMatches) {
  auto db = MakeDb();
  StrgIndex idx = BuildIndex(db);
  auto result = idx.RangeSearch(db[9], 0.0);
  ASSERT_GE(result.hits.size(), 1u);
  for (const KnnHit& h : result.hits) {
    EXPECT_NEAR(h.distance, 0.0, 1e-12);
  }
}

TEST(RangeSearch, NegativeRadiusEmpty) {
  auto db = MakeDb();
  StrgIndex idx = BuildIndex(db);
  EXPECT_TRUE(idx.RangeSearch(db[0], -1.0).hits.empty());
}

TEST(RangeSearch, PrunesAgainstLinearScan) {
  auto db = MakeDb();
  StrgIndex idx = BuildIndex(db);
  auto result = idx.RangeSearch(db[0], 10.0);
  // Small radius: the key band should exclude most of the database.
  EXPECT_LT(result.distance_computations, db.size() / 2);
}

}  // namespace
}  // namespace strg::index
