// ctest-labels: unit
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rtree3d/rtree3d.h"
#include "util/random.h"

namespace strg::rtree3d {
namespace {

Box3 MakeBox(double x0, double y0, double t0, double x1, double y1,
             double t1) {
  Box3 b;
  b.min = {x0, y0, t0};
  b.max = {x1, y1, t1};
  return b;
}

TEST(Box3, VolumeMarginIntersects) {
  Box3 a = MakeBox(0, 0, 0, 2, 3, 4);
  EXPECT_DOUBLE_EQ(a.Volume(), 24.0);
  EXPECT_DOUBLE_EQ(a.Margin(), 9.0);
  EXPECT_TRUE(a.Intersects(MakeBox(1, 1, 1, 5, 5, 5)));
  EXPECT_FALSE(a.Intersects(MakeBox(3, 0, 0, 5, 5, 5)));
  EXPECT_TRUE(a.Contains(MakeBox(0.5, 0.5, 0.5, 1, 1, 1)));
  EXPECT_FALSE(a.Contains(MakeBox(0, 0, 0, 3, 3, 3)));
}

TEST(Box3, EnlargementAndUnion) {
  Box3 a = MakeBox(0, 0, 0, 1, 1, 1);
  Box3 b = MakeBox(2, 0, 0, 3, 1, 1);
  Box3 u = a.Union(b);
  EXPECT_DOUBLE_EQ(u.Volume(), 3.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 2.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(a), 0.0);
}

TEST(Box3, MinDist2) {
  Box3 a = MakeBox(0, 0, 0, 1, 1, 1);
  EXPECT_DOUBLE_EQ(a.MinDist2(MakeBox(0.5, 0.5, 0.5, 2, 2, 2)), 0.0);
  // Separated by 2 along x only.
  EXPECT_DOUBLE_EQ(a.MinDist2(MakeBox(3, 0, 0, 4, 1, 1)), 4.0);
  // Separated along two axes: 3-4-5 style.
  EXPECT_DOUBLE_EQ(a.MinDist2(MakeBox(4, 5, 0, 6, 6, 1)), 9.0 + 16.0);
}

TEST(Box3, OfOgBoundsTrajectory) {
  core::Og og;
  og.start_frame = 10;
  for (int i = 0; i < 5; ++i) {
    graph::NodeAttr a;
    a.cx = 10.0 + i;
    a.cy = 20.0 - i;
    og.sequence.push_back(a);
  }
  Box3 box = Box3::OfOg(og);
  EXPECT_DOUBLE_EQ(box.min[0], 10.0);
  EXPECT_DOUBLE_EQ(box.max[0], 14.0);
  EXPECT_DOUBLE_EQ(box.min[1], 16.0);
  EXPECT_DOUBLE_EQ(box.max[1], 20.0);
  EXPECT_DOUBLE_EQ(box.min[2], 10.0);
  EXPECT_DOUBLE_EQ(box.max[2], 14.0);
}

std::vector<Box3> RandomBoxes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Box3> boxes;
  for (size_t i = 0; i < n; ++i) {
    double x = rng.Uniform(0, 100), y = rng.Uniform(0, 100),
           t = rng.Uniform(0, 1000);
    boxes.push_back(MakeBox(x, y, t, x + rng.Uniform(1, 10),
                            y + rng.Uniform(1, 10), t + rng.Uniform(5, 40)));
  }
  return boxes;
}

TEST(RTree3D, InvariantsHoldAfterManyInserts) {
  auto boxes = RandomBoxes(300, 3);
  RTree3D tree;
  for (size_t i = 0; i < boxes.size(); ++i) tree.Insert(boxes[i], i);
  EXPECT_EQ(tree.Size(), 300u);
  EXPECT_GT(tree.Height(), 1u);
  EXPECT_NO_THROW(tree.CheckInvariants());
}

TEST(RTree3D, WindowQueryMatchesBruteForce) {
  auto boxes = RandomBoxes(200, 7);
  RTree3D tree;
  for (size_t i = 0; i < boxes.size(); ++i) tree.Insert(boxes[i], i);

  Box3 window = MakeBox(20, 20, 100, 60, 60, 400);
  std::set<size_t> expected;
  for (size_t i = 0; i < boxes.size(); ++i) {
    if (boxes[i].Intersects(window)) expected.insert(i);
  }
  auto got_v = tree.WindowQuery(window);
  std::set<size_t> got(got_v.begin(), got_v.end());
  EXPECT_EQ(got, expected);
  EXPECT_EQ(got_v.size(), got.size());  // no duplicates
}

TEST(RTree3D, KnnMatchesBruteForce) {
  auto boxes = RandomBoxes(200, 11);
  RTree3D tree;
  for (size_t i = 0; i < boxes.size(); ++i) tree.Insert(boxes[i], i);

  Box3 q = MakeBox(50, 50, 500, 51, 51, 510);
  std::vector<std::pair<double, size_t>> expected;
  for (size_t i = 0; i < boxes.size(); ++i) {
    expected.emplace_back(boxes[i].MinDist2(q), i);
  }
  std::sort(expected.begin(), expected.end());

  auto hits = tree.Knn(q, 7);
  ASSERT_EQ(hits.size(), 7u);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_NEAR(hits[i].mbr_distance * hits[i].mbr_distance,
                expected[i].first, 1e-9)
        << "rank " << i;
  }
}

TEST(RTree3D, KnnEdgeCases) {
  RTree3D tree;
  Box3 q = MakeBox(0, 0, 0, 1, 1, 1);
  EXPECT_TRUE(tree.Knn(q, 3).empty());
  tree.Insert(q, 42);
  auto hits = tree.Knn(q, 5);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 42u);
  EXPECT_DOUBLE_EQ(hits[0].mbr_distance, 0.0);
}

TEST(RTree3D, RejectsBadParams) {
  RTreeParams params;
  params.max_entries = 4;
  params.min_entries = 3;  // > max/2
  EXPECT_THROW(RTree3D{params}, std::invalid_argument);
}

TEST(RTree3D, WindowQueryOnEmptyTree) {
  RTree3D tree;
  EXPECT_TRUE(tree.WindowQuery(MakeBox(0, 0, 0, 10, 10, 10)).empty());
}

}  // namespace
}  // namespace strg::rtree3d
