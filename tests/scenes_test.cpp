// ctest-labels: unit
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "strg/object_graph.h"
#include "video/scenes.h"

namespace strg::video {
namespace {

TEST(LabScene, ObjectsCarryRouteIds) {
  SceneParams sp;
  sp.num_objects = 30;
  SceneSpec scene = MakeLabScene(sp);
  std::set<int> routes;
  for (const ObjectSpec& obj : scene.objects) {
    ASSERT_GE(obj.route, 0);
    EXPECT_LT(obj.route, 9);  // default lab route count
    routes.insert(obj.route);
  }
  // 30 draws over 9 routes: overwhelmingly likely to hit most of them.
  EXPECT_GE(routes.size(), 5u);
}

TEST(LabScene, SameRouteObjectsFollowSimilarPaths) {
  SceneParams sp;
  sp.num_objects = 40;
  SceneSpec scene = MakeLabScene(sp);
  // Find two objects on the same route and compare their endpoints.
  for (size_t i = 0; i < scene.objects.size(); ++i) {
    for (size_t j = i + 1; j < scene.objects.size(); ++j) {
      const ObjectSpec& a = scene.objects[i];
      const ObjectSpec& b = scene.objects[j];
      if (a.route != b.route) continue;
      double start_gap = Distance(a.path.At(0), b.path.At(0));
      // Endpoint jitter is sigma 3.5 per axis; 25 allows ~5 sigma.
      EXPECT_LT(start_gap, 25.0)
          << "objects " << i << "," << j << " route " << a.route;
    }
  }
}

TEST(LabScene, ContainsUTurnRoutes) {
  SceneParams sp;
  sp.num_objects = 60;
  SceneSpec scene = MakeLabScene(sp);
  bool found_uturn = false;
  for (const ObjectSpec& obj : scene.objects) {
    double net = Distance(obj.path.At(0), obj.path.At(1.0));
    if (obj.path.Length() > 0 && net < 0.5 * obj.path.Length()) {
      found_uturn = true;
    }
  }
  EXPECT_TRUE(found_uturn);
}

TEST(LabScene, RouteCountConfigurable) {
  SceneParams sp;
  sp.num_objects = 50;
  sp.num_routes = 3;
  SceneSpec scene = MakeLabScene(sp);
  for (const ObjectSpec& obj : scene.objects) {
    EXPECT_LT(obj.route, 3);
  }
}

TEST(TrafficScene, RoutesAreDirectionTimesClass) {
  SceneParams sp;
  sp.num_objects = 60;
  sp.height = 100;
  SceneSpec scene = MakeTrafficScene(sp);
  for (const ObjectSpec& obj : scene.objects) {
    ASSERT_GE(obj.route, 0);
    ASSERT_LT(obj.route, 6);
    // route id = dir * 3 + class; eastbound routes move +x.
    bool eastbound = obj.route < 3;
    double dx = obj.path.At(1.0).x - obj.path.At(0.0).x;
    EXPECT_EQ(dx > 0, eastbound) << "route " << obj.route;
  }
}

TEST(TrafficScene, VehicleClassControlsSize) {
  SceneParams sp;
  sp.num_objects = 60;
  sp.height = 100;
  SceneSpec scene = MakeTrafficScene(sp);
  auto body_area = [](const ObjectSpec& obj) {
    return obj.parts[0].width * obj.parts[0].height;
  };
  double areas[3] = {0, 0, 0};
  int counts[3] = {0, 0, 0};
  for (const ObjectSpec& obj : scene.objects) {
    areas[obj.route % 3] += body_area(obj);
    counts[obj.route % 3] += 1;
  }
  for (int c = 0; c < 3; ++c) ASSERT_GT(counts[c], 0);
  EXPECT_LT(areas[0] / counts[0], areas[1] / counts[1]);  // car < van
  EXPECT_LT(areas[1] / counts[1], areas[2] / counts[2]);  // van < truck
}

TEST(TrafficScene, ClassesRideSeparatedLanes) {
  SceneParams sp;
  sp.num_objects = 90;
  sp.height = 100;
  SceneSpec scene = MakeTrafficScene(sp);
  // Mean |y| per class within one direction must be ordered and separated.
  double y[3] = {0, 0, 0};
  int n[3] = {0, 0, 0};
  for (const ObjectSpec& obj : scene.objects) {
    if (obj.route >= 3) continue;  // eastbound only
    y[obj.route % 3] += obj.path.At(0.5).y;
    n[obj.route % 3] += 1;
  }
  for (int c = 0; c < 3; ++c) ASSERT_GT(n[c], 0);
  EXPECT_GT(y[1] / n[1], y[0] / n[0] + 5.0);
  EXPECT_GT(y[2] / n[2], y[1] / n[1] + 5.0);
}

TEST(Org, MaxDisplacementSeesUTurnExtent) {
  core::Org org;
  for (int i = 0; i < 11; ++i) {
    graph::NodeAttr a;
    // Out 5 steps, back 5 steps: net ~0, max 5.
    a.cx = i <= 5 ? i : 10 - i;
    a.cy = 0;
    org.attrs.push_back(a);
    org.nodes.push_back({i, 0});
  }
  EXPECT_NEAR(org.NetDisplacement(), 0.0, 1e-9);
  EXPECT_NEAR(org.MaxDisplacement(), 5.0, 1e-9);
}

}  // namespace
}  // namespace strg::video
