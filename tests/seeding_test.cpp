// ctest-labels: seeding
#include <gtest/gtest.h>

#include <set>

#include "cluster/seeding.h"
#include "distance/eged.h"
#include "distance/lp.h"
#include "util/random.h"

namespace strg::cluster {
namespace {

using dist::Sequence;

Sequence Flat(double value, size_t len = 6) {
  Sequence s(len);
  for (auto& v : s) {
    v.fill(0.0);
    v[0] = value;
  }
  return s;
}

TEST(Seeding, ReturnsDistinctIndices) {
  std::vector<Sequence> data;
  Rng gen(1);
  for (int i = 0; i < 30; ++i) data.push_back(Flat(gen.Uniform(0, 100)));
  dist::EgedMetricDistance metric;
  Rng rng(2);
  auto seeds = SeedCentroidIndices(data, 8, metric, &rng);
  std::set<size_t> uniq(seeds.begin(), seeds.end());
  EXPECT_EQ(uniq.size(), 8u);
  for (size_t s : seeds) EXPECT_LT(s, data.size());
}

TEST(Seeding, SpreadsAcrossSeparatedBlobs) {
  // Three well-separated blobs; 3 seeds should land one per blob (D^2
  // weighting makes any other outcome vanishingly unlikely).
  std::vector<Sequence> data;
  Rng gen(3);
  for (double center : {0.0, 50.0, 100.0}) {
    for (int i = 0; i < 10; ++i) {
      data.push_back(Flat(center + gen.Gaussian(0, 0.5)));
    }
  }
  dist::EgedMetricDistance metric;
  Rng rng(4);
  auto seeds = SeedCentroidIndices(data, 3, metric, &rng);
  std::set<size_t> blobs;
  for (size_t s : seeds) blobs.insert(s / 10);
  EXPECT_EQ(blobs.size(), 3u);
}

TEST(Seeding, HandlesDuplicatePoints) {
  std::vector<Sequence> data(10, Flat(5.0));
  dist::EgedMetricDistance metric;
  Rng rng(5);
  auto seeds = SeedCentroidIndices(data, 4, metric, &rng);
  std::set<size_t> uniq(seeds.begin(), seeds.end());
  EXPECT_EQ(uniq.size(), 4u);  // falls back to distinct indices
}

TEST(Seeding, SampleCapStillCoversBlobs) {
  std::vector<Sequence> data;
  Rng gen(6);
  for (double center : {0.0, 60.0}) {
    for (int i = 0; i < 50; ++i) {
      data.push_back(Flat(center + gen.Gaussian(0, 0.5)));
    }
  }
  dist::EgedMetricDistance metric;
  Rng rng(7);
  auto seeds = SeedCentroidIndices(data, 2, metric, &rng, 20);
  ASSERT_EQ(seeds.size(), 2u);
  std::set<size_t> blobs;
  for (size_t s : seeds) blobs.insert(s / 50);
  EXPECT_EQ(blobs.size(), 2u);
}

TEST(Seeding, KClampedToDataSize) {
  std::vector<Sequence> data{Flat(1), Flat(2)};
  dist::EgedMetricDistance metric;
  Rng rng(8);
  EXPECT_EQ(SeedCentroidIndices(data, 9, metric, &rng).size(), 2u);
}

TEST(Seeding, ThrowsOnEmpty) {
  dist::EgedMetricDistance metric;
  Rng rng(9);
  std::vector<Sequence> empty;
  EXPECT_THROW(SeedCentroidIndices(empty, 2, metric, &rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace strg::cluster
