// ctest-labels: unit
#include <gtest/gtest.h>

#include <algorithm>

#include "segment/connected_components.h"
#include "segment/mean_shift.h"
#include "segment/segmenter.h"
#include "video/renderer.h"
#include "video/scenes.h"

namespace strg::segment {
namespace {

using video::Frame;
using video::Rgb;

Frame TwoHalvesFrame() {
  Frame f(20, 10, Rgb{0, 0, 0});
  for (int y = 0; y < 10; ++y) {
    for (int x = 10; x < 20; ++x) f.At(x, y) = Rgb{255, 255, 255};
  }
  return f;
}

TEST(ConnectedComponents, TwoHalves) {
  int n = 0;
  auto labels = LabelConnectedComponents(TwoHalvesFrame(), 10.0, &n);
  EXPECT_EQ(n, 2);
  EXPECT_EQ(labels[0], labels[9]);
  EXPECT_NE(labels[0], labels[10]);
}

TEST(ConnectedComponents, ToleranceJoinsEverything) {
  int n = 0;
  LabelConnectedComponents(TwoHalvesFrame(), 500.0, &n);
  EXPECT_EQ(n, 1);
}

TEST(ConnectedComponents, DiagonalIsNotConnected) {
  // 4-connectivity: two diagonal pixels stay separate components.
  Frame f(2, 2, Rgb{0, 0, 0});
  f.At(0, 0) = Rgb{255, 0, 0};
  f.At(1, 1) = Rgb{255, 0, 0};
  int n = 0;
  auto labels = LabelConnectedComponents(f, 10.0, &n);
  // The two red pixels are diagonal (not 4-adjacent) and so are the two
  // black ones: four singleton components.
  EXPECT_EQ(n, 4);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(MeanShift, FlattensGaussianNoise) {
  // Noisy constant-color frame: after filtering, pixel spread shrinks.
  video::SceneSpec scene;
  scene.width = 24;
  scene.height = 24;
  scene.background.tile_size = 0;
  scene.background.base = {100, 100, 100};
  scene.noise_stddev = 6.0;
  scene.num_frames = 1;
  Frame noisy = video::RenderFrame(scene, 0);

  MeanShiftParams params;
  Frame smooth = MeanShiftFilter(noisy, params);

  auto spread = [](const Frame& f) {
    double mn = 255, mx = 0;
    for (const Rgb& p : f.pixels()) {
      mn = std::min(mn, static_cast<double>(p.r));
      mx = std::max(mx, static_cast<double>(p.r));
    }
    return mx - mn;
  };
  EXPECT_LT(spread(smooth), spread(noisy) * 0.6);
}

TEST(MeanShift, PreservesStrongEdges) {
  Frame f = TwoHalvesFrame();
  MeanShiftParams params;
  Frame out = MeanShiftFilter(f, params);
  // Pixels on each side of the edge keep their side's color.
  EXPECT_LT(out.At(8, 5).r, 60);
  EXPECT_GT(out.At(12, 5).r, 200);
}

TEST(Segmenter, CleanFrameTwoRegions) {
  SegmenterParams params;
  params.use_mean_shift = false;
  Segmentation seg = SegmentFrame(TwoHalvesFrame(), params);
  EXPECT_EQ(seg.regions.size(), 2u);
  EXPECT_EQ(seg.adjacency.size(), 1u);
  // Sizes and centroids are exact for this synthetic input.
  int total = 0;
  for (const Region& r : seg.regions) total += r.size;
  EXPECT_EQ(total, 200);
  for (const Region& r : seg.regions) {
    EXPECT_EQ(r.size, 100);
    EXPECT_NEAR(r.centroid_y, 4.5, 1e-9);
  }
}

TEST(Segmenter, RegionAttributesMatchDrawnObject) {
  Frame f(30, 30, Rgb{10, 10, 10});
  for (int y = 10; y < 20; ++y) {
    for (int x = 10; x < 20; ++x) f.At(x, y) = Rgb{200, 30, 30};
  }
  SegmenterParams params;
  params.use_mean_shift = false;
  Segmentation seg = SegmentFrame(f, params);
  ASSERT_EQ(seg.regions.size(), 2u);
  const Region* red = nullptr;
  for (const Region& r : seg.regions) {
    if (r.mean_color.r > 100) red = &r;
  }
  ASSERT_NE(red, nullptr);
  EXPECT_EQ(red->size, 100);
  EXPECT_NEAR(red->centroid_x, 14.5, 1e-9);
  EXPECT_NEAR(red->centroid_y, 14.5, 1e-9);
  EXPECT_EQ(red->min_x, 10);
  EXPECT_EQ(red->max_x, 19);
}

TEST(Segmenter, SmallRegionsMergedAway) {
  Frame f(20, 20, Rgb{10, 10, 10});
  f.At(5, 5) = Rgb{250, 250, 250};  // 1-pixel speck
  SegmenterParams params;
  params.use_mean_shift = false;
  params.min_region_size = 4;
  Segmentation seg = SegmentFrame(f, params);
  EXPECT_EQ(seg.regions.size(), 1u);
  EXPECT_EQ(seg.regions[0].size, 400);
}

TEST(Segmenter, NoisyRenderedSceneSegmentsStably) {
  video::SceneParams sp;
  sp.num_objects = 1;
  sp.noise_stddev = 2.5;
  video::SceneSpec scene = video::MakeLabScene(sp);
  SegmenterParams params;  // mean-shift path
  Segmentation seg =
      SegmentFrame(video::RenderFrame(scene, sp.object_lifetime / 2), params);
  // The scene has a textured background, 3 furniture items, and a 3-part
  // person: expect a moderate, stable region count (not per-pixel noise).
  EXPECT_GE(seg.regions.size(), 5u);
  EXPECT_LE(seg.regions.size(), 40u);
  // Label map must be consistent with regions.
  for (int l : seg.labels) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, static_cast<int>(seg.regions.size()));
  }
}

TEST(Segmenter, AdjacencyIsSymmetricConsistent) {
  SegmenterParams params;
  params.use_mean_shift = false;
  Segmentation seg = SegmentFrame(TwoHalvesFrame(), params);
  for (auto [a, b] : seg.adjacency) {
    EXPECT_LT(a, b);
    EXPECT_LT(b, static_cast<int>(seg.regions.size()));
  }
}

}  // namespace
}  // namespace strg::segment
