// ctest-labels: storage
//
// Property tests for the storage codecs: randomized catalogs survive flat
// and paged round-trips byte-for-byte, and decode of damaged input —
// truncation at every prefix length, flipped bytes, trailing garbage —
// surfaces as a typed api::Status (never a crash, never silent garbage).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "storage/catalog.h"
#include "storage/pager/storage_params.h"
#include "storage/serializer.h"
#include "util/random.h"

namespace strg::storage {
namespace {

core::Og RandomOg(Rng* rng) {
  core::Og og;
  og.id = static_cast<int>(rng->Uniform(0, 1000));
  og.start_frame = static_cast<int>(rng->Uniform(0, 5000));
  int frames = 1 + static_cast<int>(rng->Uniform(0, 40));
  for (int i = 0; i < frames; ++i) {
    graph::NodeAttr a;
    a.size = rng->Uniform(1, 500);
    a.color = {rng->Uniform(0, 255), rng->Uniform(0, 255),
               rng->Uniform(0, 255)};
    a.cx = rng->Uniform(0, 320);
    a.cy = rng->Uniform(0, 240);
    og.sequence.push_back(a);
  }
  int members = static_cast<int>(rng->Uniform(0, 6));
  for (int i = 0; i < members; ++i) {
    og.member_orgs.push_back(static_cast<size_t>(rng->Uniform(0, 10000)));
  }
  return og;
}

CatalogSegment RandomSegment(Rng* rng, int index) {
  CatalogSegment seg;
  seg.video_name = "video-" + std::to_string(index) + "-" +
                   std::to_string(static_cast<int>(rng->Uniform(0, 99)));
  seg.frame_width = 16 + static_cast<int>(rng->Uniform(0, 640));
  seg.frame_height = 16 + static_cast<int>(rng->Uniform(0, 480));
  seg.num_frames = static_cast<uint64_t>(rng->Uniform(1, 10000));

  int bg_nodes = 1 + static_cast<int>(rng->Uniform(0, 8));
  std::vector<int> ids;
  for (int i = 0; i < bg_nodes; ++i) {
    graph::NodeAttr a;
    a.size = rng->Uniform(1, 5000);
    a.cx = rng->Uniform(0, seg.frame_width);
    a.cy = rng->Uniform(0, seg.frame_height);
    ids.push_back(seg.background.rag.AddNode(a));
  }
  for (size_t i = 1; i < ids.size(); ++i) {
    if (rng->Uniform(0, 1) < 0.6) seg.background.rag.AddEdge(ids[i - 1], ids[i]);
  }

  int ogs = static_cast<int>(rng->Uniform(0, 5));
  for (int i = 0; i < ogs; ++i) seg.ogs.push_back(RandomOg(rng));
  return seg;
}

Catalog RandomCatalog(uint64_t seed) {
  Rng rng(seed);
  Catalog catalog;
  int segments = 1 + static_cast<int>(rng.Uniform(0, 3));
  for (int i = 0; i < segments; ++i) {
    catalog.AddSegment(RandomSegment(&rng, i));
  }
  return catalog;
}

void ExpectSameCatalog(const Catalog& want, const Catalog& got) {
  ASSERT_EQ(got.NumSegments(), want.NumSegments());
  ASSERT_EQ(got.TotalOgs(), want.TotalOgs());
  for (size_t s = 0; s < want.NumSegments(); ++s) {
    const CatalogSegment& a = want.segments()[s];
    const CatalogSegment& b = got.segments()[s];
    EXPECT_EQ(b.video_name, a.video_name);
    EXPECT_EQ(b.frame_width, a.frame_width);
    EXPECT_EQ(b.frame_height, a.frame_height);
    EXPECT_EQ(b.num_frames, a.num_frames);
    EXPECT_EQ(b.background.rag.NumNodes(), a.background.rag.NumNodes());
    EXPECT_EQ(b.background.rag.NumEdges(), a.background.rag.NumEdges());
    ASSERT_EQ(b.ogs.size(), a.ogs.size());
    for (size_t i = 0; i < a.ogs.size(); ++i) {
      EXPECT_EQ(b.ogs[i].id, a.ogs[i].id);
      EXPECT_EQ(b.ogs[i].start_frame, a.ogs[i].start_frame);
      EXPECT_EQ(b.ogs[i].member_orgs, a.ogs[i].member_orgs);
      ASSERT_EQ(b.ogs[i].Length(), a.ogs[i].Length());
      for (size_t f = 0; f < a.ogs[i].Length(); ++f) {
        EXPECT_EQ(b.ogs[i].sequence[f].size, a.ogs[i].sequence[f].size);
        EXPECT_EQ(b.ogs[i].sequence[f].color, a.ogs[i].sequence[f].color);
        EXPECT_EQ(b.ogs[i].sequence[f].cx, a.ogs[i].sequence[f].cx);
        EXPECT_EQ(b.ogs[i].sequence[f].cy, a.ogs[i].sequence[f].cy);
      }
    }
  }
}

TEST(SerializerProperty, RandomizedCatalogsRoundTripFlat) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Catalog catalog = RandomCatalog(seed);
    std::string bytes = catalog.Serialize();
    // Identical input bytes re-serialize identically (canonical encoding).
    auto back = Catalog::TryDeserialize(bytes);
    ASSERT_TRUE(back.ok()) << back.status().message();
    ExpectSameCatalog(catalog, back.value());
    EXPECT_EQ(back.value().Serialize(), bytes);
  }
}

TEST(SerializerProperty, RandomizedSequencesRoundTrip) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    dist::Sequence seq(1 + static_cast<size_t>(rng.Uniform(0, 60)));
    for (auto& v : seq) {
      for (double& x : v) x = rng.Uniform(-1e6, 1e6);
    }
    Writer w;
    EncodeSequence(seq, &w);
    Reader r(w.bytes());
    dist::Sequence back = DecodeSequence(&r);
    EXPECT_TRUE(r.AtEnd());
    ASSERT_EQ(back.size(), seq.size());
    for (size_t i = 0; i < seq.size(); ++i) {
      for (size_t k = 0; k < dist::kFeatureDim; ++k) {
        EXPECT_EQ(back[i][k], seq[i][k]);  // bit-identical doubles
      }
    }
  }
}

TEST(SerializerProperty, TruncationAtEveryPrefixIsTypedCorruption) {
  Catalog catalog = RandomCatalog(42);
  std::string bytes = catalog.Serialize();
  ASSERT_GT(bytes.size(), 16u);
  // Every strict prefix must fail with a typed status — no crash, no
  // exception escaping, no partially-filled catalog passed off as intact.
  size_t stride = bytes.size() > 4096 ? 13 : 1;
  for (size_t len = 0; len < bytes.size(); len += stride) {
    auto r = Catalog::TryDeserialize(std::string_view(bytes).substr(0, len));
    ASSERT_FALSE(r.ok()) << "prefix length " << len << " decoded";
    EXPECT_EQ(r.status().code(), api::StatusCode::kCorruption)
        << "prefix length " << len;
  }
}

TEST(SerializerProperty, TrailingGarbageAndBadMagicAreTypedCorruption) {
  Catalog catalog = RandomCatalog(7);
  std::string bytes = catalog.Serialize();

  std::string trailing = bytes + "zz";
  auto r1 = Catalog::TryDeserialize(trailing);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), api::StatusCode::kCorruption);

  std::string bad_magic = bytes;
  bad_magic[0] ^= 0x40;
  auto r2 = Catalog::TryDeserialize(bad_magic);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), api::StatusCode::kCorruption);
}

TEST(SerializerProperty, RandomByteFlipsNeverCrashDecode) {
  Catalog catalog = RandomCatalog(11);
  std::string bytes = catalog.Serialize();
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string damaged = bytes;
    size_t pos = static_cast<size_t>(
        rng.Uniform(0, static_cast<double>(damaged.size() - 1)));
    damaged[pos] ^= static_cast<char>(1 + static_cast<int>(
                        rng.Uniform(0, 254)));
    // A flipped byte may still decode (the flat format checksums nothing
    // past the magic — the WAL and page file own integrity). The contract
    // here: failure is always a typed status, success is well-formed.
    auto r = Catalog::TryDeserialize(damaged);
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), api::StatusCode::kCorruption);
    } else {
      EXPECT_LE(r.value().NumSegments(), 1000u);
    }
  }
}

TEST(SerializerProperty, RandomizedCatalogsRoundTripPaged) {
  StorageParams params;
  params.paged = true;
  params.page_size = 256;
  params.cache_bytes = 16 * 256;
  params.cache_shards = 2;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Catalog catalog = RandomCatalog(seed);
    std::string path = ::testing::TempDir() + "/serializer_prop_paged.pages";
    std::remove(path.c_str());

    uint64_t user_data = 0xC0FFEE00 + seed;
    ASSERT_TRUE(catalog.TrySaveToPagedFile(path, params, user_data).ok());
    uint64_t got_user_data = 0;
    auto back = Catalog::TryLoadFromPagedFile(path, params, &got_user_data);
    ASSERT_TRUE(back.ok()) << back.status().message();
    EXPECT_EQ(got_user_data, user_data);
    ExpectSameCatalog(catalog, back.value());
    EXPECT_EQ(back.value().Serialize(), catalog.Serialize());
    std::remove(path.c_str());
  }
}

TEST(SerializerProperty, PagedLoadOfCorruptFileIsTypedStatus) {
  StorageParams params;
  params.paged = true;
  params.page_size = 256;
  std::string path = ::testing::TempDir() + "/serializer_prop_corrupt.pages";
  std::remove(path.c_str());
  Catalog catalog = RandomCatalog(3);
  ASSERT_TRUE(catalog.TrySaveToPagedFile(path, params, 0).ok());

  // Flip one byte in every page in turn; each damaged copy must load as a
  // typed error (kCorruption from the page CRC).
  std::string pristine;
  {
    FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      pristine.append(buf, n);
    }
    std::fclose(f);
  }
  ASSERT_GE(pristine.size(), 2 * params.page_size);
  for (size_t page = 0; page * params.page_size < pristine.size(); ++page) {
    std::string damaged = pristine;
    damaged[page * params.page_size + 20] ^= 0x3C;
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(damaged.data(), 1, damaged.size(), f),
              damaged.size());
    std::fclose(f);
    auto r = Catalog::TryLoadFromPagedFile(path, params);
    ASSERT_FALSE(r.ok()) << "page " << page << " corruption went unnoticed";
    EXPECT_EQ(r.status().code(), api::StatusCode::kCorruption);
  }

  // Missing file is kNotFound, not kCorruption.
  std::remove(path.c_str());
  auto missing = Catalog::TryLoadFromPagedFile(path, params);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), api::StatusCode::kNotFound);
}

}  // namespace
}  // namespace strg::storage
