// ctest-labels: server
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "server/query_engine.h"
#include "synth/generator.h"

namespace strg::server {
namespace {

/// Cheap segment fixture: synthetic OGs + empty background, with 100x100
/// frame geometry so SegmentResult::Scaling() matches synth::SynthScaling()
/// — queries built from the same dataset are then directly comparable.
struct Fixture {
  api::SegmentResult segment;           ///< first `base` OGs
  std::vector<core::Og> stream;         ///< OGs the writer threads ingest
  std::vector<dist::Sequence> queries;  ///< probe sequences
};

Fixture MakeFixture(size_t base, uint64_t seed) {
  synth::SynthParams sp;
  sp.items_per_cluster = 1;  // one OG per pattern -> 48 total
  sp.seed = seed;
  synth::SynthDataset ds = synth::GenerateSyntheticOgs(sp);

  Fixture fx;
  fx.segment.frame_width = 100;
  fx.segment.frame_height = 100;
  size_t frames = 0;
  for (size_t i = 0; i < ds.ogs.size(); ++i) {
    const core::Og& og = ds.ogs[i];
    frames = std::max(frames, static_cast<size_t>(og.start_frame) +
                                  og.Length());
    if (i < base) {
      fx.segment.decomposition.object_graphs.push_back(og);
    } else {
      fx.stream.push_back(og);
    }
  }
  fx.segment.num_frames = frames;
  fx.queries = ds.Sequences(synth::SynthScaling());
  return fx;
}

index::StrgIndexParams FastIndex() {
  index::StrgIndexParams p;
  p.num_clusters = 4;
  p.cluster_params.max_iterations = 4;
  return p;
}

/// The central invariant: AddVideo publishes generation 1 holding `base`
/// OGs, and every later publication adds exactly one OG, so any snapshot
/// must answer exhaustive queries with exactly base + (generation - 1)
/// hits. A torn read (query observing a half-inserted tree) breaks this.
size_t ExpectedOgs(size_t base, uint64_t generation) {
  return base + static_cast<size_t>(generation - 1);
}

TEST(ServerConcurrency, WritersAndReadersSeeConsistentGenerations) {
  constexpr size_t kBase = 16;
  constexpr size_t kWriters = 2;
  constexpr size_t kOgsPerWriter = 10;
  constexpr size_t kReaders = 4;
  constexpr size_t kQueriesPerReader = 40;

  Fixture fx = MakeFixture(kBase, 7);
  ASSERT_GE(fx.stream.size(), kWriters * kOgsPerWriter);

  EngineOptions opts;
  opts.num_threads = 4;
  opts.max_pending = 256;
  QueryEngine engine(FastIndex(), opts);

  int segment_id = -1;
  uint64_t gen = engine.AddVideo("lab", fx.segment, &segment_id);
  ASSERT_EQ(gen, 1u);
  ASSERT_EQ(segment_id, 0);

  const dist::FeatureScaling scaling = synth::SynthScaling();
  std::atomic<bool> failed{false};

  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (size_t i = 0; i < kOgsPerWriter; ++i) {
        const core::Og& og = fx.stream[w * kOgsPerWriter + i];
        uint64_t g = engine.AddObjectGraph(segment_id, "lab", og, scaling);
        if (g < 2) failed.store(true);
      }
    });
  }

  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last_gen = 0;
      for (size_t i = 0; i < kQueriesPerReader; ++i) {
        const dist::Sequence& q = fx.queries[(r * 13 + i) % fx.queries.size()];
        QueryOptions qo;
        qo.use_cache = (r % 2 == 0);  // exercise both paths concurrently
        QueryResult res;
        switch (i % 3) {
          case 0:
            res = engine.FindSimilar(q, 100000, qo);
            break;
          case 1:
            res = engine.FindWithinRadius(q, 1e12, qo);
            break;
          default:
            res = engine.FindActive("lab", 0, 1 << 30, qo);
            break;
        }
        if (res.status != StatusCode::kOk) {
          failed.store(true);
          continue;
        }
        // Exhaustive queries must see exactly the published OG count for
        // the generation they report — never a half-inserted tree.
        EXPECT_EQ(res.hits.size(), ExpectedOgs(kBase, res.generation))
            << "generation " << res.generation;
        EXPECT_GE(res.generation, last_gen) << "generation went backwards";
        last_gen = res.generation;
      }
    });
  }

  for (auto& t : writers) t.join();
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load());

  const size_t total = kBase + kWriters * kOgsPerWriter;
  EXPECT_EQ(engine.Generation(), 1 + kWriters * kOgsPerWriter);
  QueryResult fin = engine.FindSimilar(fx.queries[0], 100000);
  ASSERT_EQ(fin.status, StatusCode::kOk);
  EXPECT_EQ(fin.hits.size(), total);
  EXPECT_EQ(engine.snapshot()->db.NumObjectGraphs(), total);
}

TEST(ServerConcurrency, SnapshotsAreImmutableWhileIngestContinues) {
  constexpr size_t kBase = 12;
  Fixture fx = MakeFixture(kBase, 11);

  EngineOptions opts;
  opts.num_threads = 2;
  QueryEngine engine(FastIndex(), opts);
  int segment_id = -1;
  engine.AddVideo("lab", fx.segment, &segment_id);

  const dist::FeatureScaling scaling = synth::SynthScaling();
  std::thread writer([&] {
    for (const core::Og& og : fx.stream) {
      engine.AddObjectGraph(segment_id, "lab", og, scaling);
    }
  });

  // A retained snapshot is a frozen generation: repeated serial replays on
  // it must agree with each other — and with its recorded OG count — no
  // matter how many newer generations the writer publishes meanwhile.
  for (int round = 0; round < 10; ++round) {
    std::shared_ptr<const Snapshot> snap = engine.snapshot();
    const size_t count = snap->db.NumObjectGraphs();
    EXPECT_EQ(count, ExpectedOgs(kBase, snap->generation));
    const dist::Sequence& q = fx.queries[round % fx.queries.size()];
    auto first = snap->db.FindSimilar(q, 5);
    auto second = snap->db.FindSimilar(q, 5);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i].og_id, second[i].og_id);
      EXPECT_DOUBLE_EQ(first[i].distance, second[i].distance);
    }
    EXPECT_EQ(snap->db.NumObjectGraphs(), count);
  }

  writer.join();
}

TEST(ServerConcurrency, CacheServesRepeatsAndGenerationBumpInvalidates) {
  Fixture fx = MakeFixture(8, 3);
  QueryEngine engine(FastIndex());
  int segment_id = -1;
  engine.AddVideo("lab", fx.segment, &segment_id);

  const dist::Sequence& q = fx.queries[2];
  QueryResult cold = engine.FindSimilar(q, 4);
  ASSERT_EQ(cold.status, StatusCode::kOk);
  EXPECT_FALSE(cold.from_cache);

  QueryResult warm = engine.FindSimilar(q, 4);
  ASSERT_EQ(warm.status, StatusCode::kOk);
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.generation, cold.generation);
  ASSERT_EQ(warm.hits.size(), cold.hits.size());
  for (size_t i = 0; i < warm.hits.size(); ++i) {
    EXPECT_EQ(warm.hits[i].og_id, cold.hits[i].og_id);
  }
  EXPECT_GE(engine.metrics().cache_hits.load(), 1u);

  // Publishing a new generation re-keys the world: the same request is a
  // miss again and reflects the new OG.
  engine.AddObjectGraph(segment_id, "lab", fx.stream[0],
                        synth::SynthScaling());
  QueryResult after = engine.FindSimilar(q, 4);
  ASSERT_EQ(after.status, StatusCode::kOk);
  EXPECT_FALSE(after.from_cache);
  EXPECT_EQ(after.generation, cold.generation + 1);
}

TEST(ServerConcurrency, ZeroAdmissionBudgetRejectsWithOverloaded) {
  Fixture fx = MakeFixture(8, 5);
  EngineOptions opts;
  opts.max_pending = 0;
  QueryEngine engine(FastIndex(), opts);
  engine.AddVideo("lab", fx.segment);

  QueryResult res = engine.FindSimilar(fx.queries[0], 3);
  EXPECT_EQ(res.status, StatusCode::kOverloaded);
  EXPECT_TRUE(res.hits.empty());
  EXPECT_EQ(res.generation, 0u);
  EXPECT_GE(engine.metrics().rejected_overloaded.load(), 1u);
  EXPECT_EQ(StatusCodeName(res.status), "OVERLOADED");
}

TEST(ServerConcurrency, ExpiredDeadlineYieldsDeadlineExceeded) {
  Fixture fx = MakeFixture(8, 9);
  QueryEngine engine(FastIndex());
  engine.AddVideo("lab", fx.segment);

  QueryOptions qo;
  qo.timeout = std::chrono::microseconds(-1);  // expired on arrival
  QueryResult res = engine.FindSimilar(fx.queries[1], 3, qo);
  EXPECT_EQ(res.status, StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(res.hits.empty());
  const auto& m = engine.metrics();
  EXPECT_GE(m.deadline_exceeded.load() + m.expired_in_queue.load(), 1u);

  // The engine keeps serving normally afterwards.
  QueryResult ok = engine.FindSimilar(fx.queries[1], 3);
  EXPECT_EQ(ok.status, StatusCode::kOk);
  EXPECT_EQ(ok.hits.size(), 3u);
}

TEST(ServerConcurrency, MetricsJsonReportsServingState) {
  Fixture fx = MakeFixture(8, 13);
  QueryEngine engine(FastIndex());
  engine.AddVideo("lab", fx.segment);
  engine.FindSimilar(fx.queries[0], 2);
  engine.FindSimilar(fx.queries[0], 2);  // cache hit
  engine.FindWithinRadius(fx.queries[1], 1.0);
  engine.FindActive("lab", 0, 100);

  std::string json = engine.MetricsJson();
  EXPECT_NE(json.find("\"generation\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache\""), std::string::npos);
  EXPECT_NE(json.find("\"hit_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\":0"), std::string::npos) << json;
  EXPECT_GE(engine.metrics().cache_hits.load(), 1u);
  EXPECT_GE(engine.metrics().admitted.load(), 3u);
}

}  // namespace
}  // namespace strg::server
