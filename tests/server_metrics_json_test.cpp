// ctest-labels: server
//
// Regression test for the metrics scrape schema: ServerMetrics::ToJson
// must stay machine-parseable (a strict little JSON validator here, no
// third-party parser) and keep its stable top-level keys — dashboards and
// the bench harness key on them. The "shards" array is always present:
// [] on an unsharded engine, one stable-keyed entry per shard otherwise.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "server/metrics.h"
#include "server/sharded_engine.h"
#include "synth/generator.h"

namespace strg::server {
namespace {

/// Minimal strict JSON validator (objects / arrays / strings / numbers /
/// true / false / null — exactly what the scrape emits). Returns the
/// position after the value, or npos on malformed input.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool ValidDocument() {
    size_t end = Value(0);
    return end != std::string::npos && end == s_.size();
  }

 private:
  size_t Value(size_t i) {
    if (i >= s_.size()) return std::string::npos;
    switch (s_[i]) {
      case '{':
        return Object(i);
      case '[':
        return Array(i);
      case '"':
        return String(i);
      case 't':
        return Literal(i, "true");
      case 'f':
        return Literal(i, "false");
      case 'n':
        return Literal(i, "null");
      default:
        return Number(i);
    }
  }

  size_t Object(size_t i) {
    ++i;  // '{'
    if (i < s_.size() && s_[i] == '}') return i + 1;
    for (;;) {
      i = String(i);
      if (i == std::string::npos || i >= s_.size() || s_[i] != ':') {
        return std::string::npos;
      }
      i = Value(i + 1);
      if (i == std::string::npos || i >= s_.size()) return std::string::npos;
      if (s_[i] == ',') {
        ++i;
        continue;
      }
      return s_[i] == '}' ? i + 1 : std::string::npos;
    }
  }

  size_t Array(size_t i) {
    ++i;  // '['
    if (i < s_.size() && s_[i] == ']') return i + 1;
    for (;;) {
      i = Value(i);
      if (i == std::string::npos || i >= s_.size()) return std::string::npos;
      if (s_[i] == ',') {
        ++i;
        continue;
      }
      return s_[i] == ']' ? i + 1 : std::string::npos;
    }
  }

  size_t String(size_t i) {
    if (i >= s_.size() || s_[i] != '"') return std::string::npos;
    for (++i; i < s_.size(); ++i) {
      if (s_[i] == '\\') {
        ++i;
      } else if (s_[i] == '"') {
        return i + 1;
      }
    }
    return std::string::npos;
  }

  size_t Number(size_t i) {
    size_t start = i;
    if (i < s_.size() && s_[i] == '-') ++i;
    while (i < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i])) || s_[i] == '.' ||
            s_[i] == 'e' || s_[i] == 'E' || s_[i] == '+' || s_[i] == '-')) {
      ++i;
    }
    return i > start ? i : std::string::npos;
  }

  size_t Literal(size_t i, const char* lit) {
    size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(i, n, lit) != 0) return std::string::npos;
    return i + n;
  }

  const std::string& s_;
};

/// The stable top-level schema, in emission order.
const char* const kTopLevelKeys[] = {
    "\"generation\":", "\"shards\":",  "\"admission\":", "\"status_codes\":",
    "\"cache\":",      "\"ingest\":",  "\"wal\":",       "\"storage\":",
    "\"distance\":",   "\"queries\":",
};

TEST(ServerMetricsJson, UnshardedScrapeIsValidWithStableKeysAndEmptyShards) {
  ServerMetrics m;
  m.admitted.fetch_add(3);
  m.cache_hits.fetch_add(1);
  m.knn_latency.Record(120.0);
  std::string json = m.ToJson(/*generation=*/7);

  EXPECT_TRUE(JsonChecker(json).ValidDocument()) << json;
  size_t last = 0;
  for (const char* key : kTopLevelKeys) {
    size_t pos = json.find(key);
    ASSERT_NE(pos, std::string::npos) << "missing key " << key;
    EXPECT_GT(pos, last) << "key out of order: " << key;
    last = pos;
  }
  EXPECT_NE(json.find("\"generation\":7"), std::string::npos);
  EXPECT_NE(json.find("\"shards\":[]"), std::string::npos);
}

TEST(ServerMetricsJson, ShardScrapeEntriesAreStableKeyed) {
  ServerMetrics m;
  std::vector<ServerMetrics::ShardScrape> shards(3);
  shards[0].queries = 10;
  shards[0].tau_prune_hits = 4;
  shards[1].queue_depth = 2;
  std::string json = m.ToJson(/*generation=*/1, shards);

  EXPECT_TRUE(JsonChecker(json).ValidDocument()) << json;
  EXPECT_NE(
      json.find("\"shards\":[{\"queries\":10,\"tau_prune_hits\":4,"
                "\"queue_depth\":0},{\"queries\":0,\"tau_prune_hits\":0,"
                "\"queue_depth\":2},{\"queries\":0,\"tau_prune_hits\":0,"
                "\"queue_depth\":0}]"),
      std::string::npos)
      << json;
}

TEST(ServerMetricsJson, ShardedEngineScrapeIsValidAndCountsLegs) {
  synth::SynthParams sp;
  sp.items_per_cluster = 1;
  sp.seed = 3;
  synth::SynthDataset ds = synth::GenerateSyntheticOgs(sp);
  api::SegmentResult segment;
  segment.frame_width = 100;
  segment.frame_height = 100;
  size_t frames = 1;
  for (const core::Og& og : ds.ogs) {
    frames = std::max(frames,
                      static_cast<size_t>(og.start_frame) + og.Length());
    segment.decomposition.object_graphs.push_back(og);
  }
  segment.num_frames = frames;

  index::StrgIndexParams ip;
  ip.num_clusters = 4;
  ip.cluster_params.max_iterations = 4;
  ShardedEngineOptions so;
  so.num_shards = 2;
  so.num_threads = 2;
  ShardedQueryEngine engine(ip, so);
  engine.AddVideo("clip", segment);

  std::vector<dist::Sequence> queries = ds.Sequences(synth::SynthScaling());
  QueryOptions opts;
  opts.use_cache = false;
  for (size_t q = 0; q < 4; ++q) {
    ASSERT_EQ(engine.Query(api::QuerySpec::Similar(queries[q], 3), opts)
                  .status,
              StatusCode::kOk);
  }

  std::string json = engine.MetricsJson();
  EXPECT_TRUE(JsonChecker(json).ValidDocument()) << json;
  // Two shard entries, 4 queries * 2 legs executed in total.
  uint64_t legs = 0;
  size_t entries = 0;
  size_t pos = 0;
  while ((pos = json.find("{\"queries\":", pos)) != std::string::npos) {
    pos += sizeof("{\"queries\":") - 1;
    legs += std::strtoull(json.c_str() + pos, nullptr, 10);
    ++entries;
  }
  EXPECT_EQ(entries, 2u);
  EXPECT_EQ(legs, 8u);
}

}  // namespace
}  // namespace strg::server
