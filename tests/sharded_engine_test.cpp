// ctest-labels: server
//
// ShardedQueryEngine contract tests: answers bit-identical to an unsharded
// QueryEngine fed the same write sequence (1/2/4/8 shards, in-RAM and
// paged), tau scatter-pruning stays exact, shard_hint restricts the
// scatter, overload sheds typed, and the cancel/deadline/writer race is
// clean under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/query_engine.h"
#include "server/sharded_engine.h"
#include "storage/pager/paged_record_store.h"
#include "storage/pager/storage_params.h"
#include "synth/generator.h"

namespace strg::server {
namespace {

/// Multi-video fixture over the synthetic dataset: `num_videos` named
/// segments (round-robin OG assignment) plus a stream of extra OGs for
/// AddObjectGraph, all with 100x100 geometry so SegmentResult::Scaling()
/// == synth::SynthScaling() and probes are directly comparable.
struct MultiFixture {
  std::vector<std::string> names;
  std::vector<api::SegmentResult> segments;
  struct StreamOg {
    size_t video = 0;
    core::Og og;
  };
  std::vector<StreamOg> stream;
  std::vector<dist::Sequence> queries;
};

MultiFixture MakeMultiFixture(size_t num_videos, size_t base_per_video,
                              uint64_t seed) {
  synth::SynthParams sp;
  sp.items_per_cluster = 1;  // one OG per pattern -> 48 total
  sp.seed = seed;
  synth::SynthDataset ds = synth::GenerateSyntheticOgs(sp);

  MultiFixture fx;
  fx.names.reserve(num_videos);
  fx.segments.resize(num_videos);
  for (size_t v = 0; v < num_videos; ++v) {
    fx.names.push_back("video_" + std::to_string(v));
    fx.segments[v].frame_width = 100;
    fx.segments[v].frame_height = 100;
  }
  const size_t base_total = num_videos * base_per_video;
  for (size_t i = 0; i < ds.ogs.size(); ++i) {
    const core::Og& og = ds.ogs[i];
    const size_t v = i % num_videos;
    if (i < base_total) {
      fx.segments[v].decomposition.object_graphs.push_back(og);
    } else {
      fx.stream.push_back({v, og});
    }
  }
  for (size_t v = 0; v < num_videos; ++v) {
    size_t frames = 1;
    for (const core::Og& og : fx.segments[v].decomposition.object_graphs) {
      frames = std::max(frames,
                        static_cast<size_t>(og.start_frame) + og.Length());
    }
    fx.segments[v].num_frames = frames;
  }
  fx.queries = ds.Sequences(synth::SynthScaling());
  return fx;
}

index::StrgIndexParams FastIndex() {
  index::StrgIndexParams p;
  p.num_clusters = 4;
  p.cluster_params.max_iterations = 4;
  return p;
}

/// Feeds the identical write sequence into either engine flavour — the
/// global og-id space both sides must agree on is defined by this order.
template <typename Engine>
std::vector<int> FeedAll(Engine& engine, const MultiFixture& fx) {
  std::vector<int> segment_ids(fx.names.size(), -1);
  for (size_t v = 0; v < fx.names.size(); ++v) {
    engine.AddVideo(fx.names[v], fx.segments[v], &segment_ids[v]);
  }
  for (const MultiFixture::StreamOg& s : fx.stream) {
    engine.AddObjectGraph(segment_ids[s.video], fx.names[s.video], s.og,
                          synth::SynthScaling());
  }
  return segment_ids;
}

void ExpectSameHits(const std::vector<api::VideoDatabase::QueryHit>& want,
                    const std::vector<api::VideoDatabase::QueryHit>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE("hit " + std::to_string(i));
    EXPECT_EQ(want[i].video, got[i].video);
    EXPECT_EQ(want[i].og_id, got[i].og_id);
    EXPECT_EQ(want[i].start_frame, got[i].start_frame);
    EXPECT_EQ(want[i].length, got[i].length);
    EXPECT_EQ(want[i].distance, got[i].distance);  // bit-identical
  }
}

TEST(ShardedEngine, ShardForIsStableAndSpreads) {
  for (size_t n : {1u, 2u, 4u, 8u}) {
    std::vector<bool> used(n, false);
    for (int i = 0; i < 64; ++i) {
      std::string name = "clip_" + std::to_string(i);
      size_t s = ShardedQueryEngine::ShardFor(name, n);
      ASSERT_LT(s, n);
      EXPECT_EQ(s, ShardedQueryEngine::ShardFor(name, n));  // stable
      used[s] = true;
    }
    // 64 names over <= 8 shards: every shard should own something.
    for (size_t s = 0; s < n; ++s) EXPECT_TRUE(used[s]) << "shard " << s;
  }
}

TEST(ShardedEngine, AnswersMatchUnshardedAcrossShardCounts) {
  MultiFixture fx = MakeMultiFixture(/*num_videos=*/6, /*base_per_video=*/5,
                                     /*seed=*/11);

  EngineOptions single_opts;
  single_opts.num_threads = 2;
  QueryEngine baseline(FastIndex(), single_opts);
  FeedAll(baseline, fx);

  // A radius both sides share, picked to return a mid-size answer set.
  const dist::Sequence& probe0 = fx.queries[0];
  auto wide = baseline.Query(api::QuerySpec::Similar(probe0, 8));
  ASSERT_EQ(wide.status, StatusCode::kOk);
  ASSERT_GE(wide.hits.size(), 6u);
  const double radius = wide.hits[5].distance * 1.0001;

  for (size_t n : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(n));
    ShardedEngineOptions so;
    so.num_shards = n;
    so.num_threads = 4;
    ShardedQueryEngine sharded(FastIndex(), so);
    FeedAll(sharded, fx);
    ASSERT_EQ(sharded.Generation(), baseline.Generation());

    for (size_t q = 0; q < 12; ++q) {
      SCOPED_TRACE("query " + std::to_string(q));
      const dist::Sequence& probe = fx.queries[q];

      api::QuerySpec knn = api::QuerySpec::Similar(probe, 5);
      QueryResult want = baseline.Query(knn);
      QueryResult got = sharded.Query(knn);
      ASSERT_EQ(got.status, StatusCode::kOk);
      EXPECT_EQ(got.generation, want.generation);
      ExpectSameHits(want.hits, got.hits);

      api::QuerySpec range = api::QuerySpec::WithinRadius(probe, radius);
      ExpectSameHits(baseline.Query(range).hits, sharded.Query(range).hits);
    }
    for (size_t v = 0; v < fx.names.size(); ++v) {
      api::QuerySpec active = api::QuerySpec::Active(fx.names[v], 0, 1 << 28);
      ExpectSameHits(baseline.Query(active).hits,
                     sharded.Query(active).hits);
    }

    // Top-level cache: the repeat is served without re-scattering.
    api::QuerySpec knn0 = api::QuerySpec::Similar(probe0, 5);
    QueryResult warm = sharded.Query(knn0);
    EXPECT_TRUE(warm.from_cache);
    ExpectSameHits(baseline.Query(knn0).hits, warm.hits);
  }
}

TEST(ShardedEngine, TauPruningFiresAndStaysExact) {
  MultiFixture fx = MakeMultiFixture(/*num_videos=*/8, /*base_per_video=*/4,
                                     /*seed=*/23);
  EngineOptions single_opts;
  QueryEngine baseline(FastIndex(), single_opts);
  FeedAll(baseline, fx);

  ShardedEngineOptions so;
  so.num_shards = 4;
  so.num_threads = 1;  // legs serialize: later legs see the running tau
  ShardedQueryEngine sharded(FastIndex(), so);
  FeedAll(sharded, fx);

  for (size_t q = 0; q < fx.queries.size(); ++q) {
    api::QuerySpec knn = api::QuerySpec::Similar(fx.queries[q], 3);
    QueryOptions opts;
    opts.use_cache = false;  // force every leg to execute
    ExpectSameHits(baseline.Query(knn).hits, sharded.Query(knn, opts).hits);
  }

  // tau_prune_hits must have fired: with one worker the legs of each
  // query run in sequence, so later legs start with a finite bound. The
  // per-shard counters are exposed through the JSON scrape.
  uint64_t pruned = 0;
  std::string json = sharded.MetricsJson();
  EXPECT_NE(json.find("\"shards\":[{"), std::string::npos);
  size_t pos = 0;
  while ((pos = json.find("\"tau_prune_hits\":", pos)) != std::string::npos) {
    pos += sizeof("\"tau_prune_hits\":") - 1;
    pruned += std::strtoull(json.c_str() + pos, nullptr, 10);
  }
  EXPECT_GT(pruned, 0u);
}

TEST(ShardedEngine, PagedShardsMatchInRamUnsharded) {
  MultiFixture fx = MakeMultiFixture(/*num_videos=*/6, /*base_per_video=*/5,
                                     /*seed=*/31);
  QueryEngine baseline(FastIndex(), EngineOptions{});
  FeedAll(baseline, fx);

  constexpr size_t kShards = 4;
  storage::StorageParams store_params;
  store_params.paged = true;
  store_params.page_size = 256;
  store_params.cache_bytes = 16 * 256;
  store_params.cache_shards = 2;

  std::vector<std::string> paths;
  std::vector<std::unique_ptr<storage::PagedRecordStore>> stores;
  std::vector<index::StrgIndexParams> per_shard;
  for (size_t s = 0; s < kShards; ++s) {
    paths.push_back(::testing::TempDir() + "/sharded_leaf_" +
                    std::to_string(s) + ".pages");
    std::remove(paths.back().c_str());
    stores.push_back(
        storage::PagedRecordStore::Create(paths.back(), store_params)
            .value());
    index::StrgIndexParams ip = FastIndex();
    ip.paged_store = stores.back().get();
    per_shard.push_back(ip);
  }
  {
    ShardedEngineOptions so;
    so.num_shards = kShards;
    so.num_threads = 4;
    ShardedQueryEngine sharded(per_shard, so);
    FeedAll(sharded, fx);

    for (size_t q = 0; q < 8; ++q) {
      SCOPED_TRACE("query " + std::to_string(q));
      api::QuerySpec knn = api::QuerySpec::Similar(fx.queries[q], 5);
      ExpectSameHits(baseline.Query(knn).hits, sharded.Query(knn).hits);
    }
    // The paged path actually ran out-of-core somewhere.
    uint64_t traffic = 0;
    for (const auto& store : stores) {
      traffic += store->cache_stats().hits + store->cache_stats().misses;
    }
    EXPECT_GT(traffic, 0u);
  }
  for (const std::string& p : paths) std::remove(p.c_str());
}

// The deadlock-freedom stress target (DESIGN.md §15): drives the DEEPEST
// legal lock chains concurrently — a live writer walking
// kIngestSharded -> kShardMap / kEngineWriter -> kRecordStore ->
// kBufferCache / kSnapshot / kThreadPool against async clients walking
// kRequestState / kGatherMerge / kResultCache and paged reads taking
// kRecordStore -> kBufferCache. Under STRG_SANITIZE=thread this must be
// race-free; under STRG_DEADLOCK_CHECK=ON every acquisition on every one
// of these paths is checked against the rank hierarchy.
TEST(ShardedEngine, DeepLockChainStressWithLiveWriter) {
  MultiFixture fx = MakeMultiFixture(/*num_videos=*/6, /*base_per_video=*/4,
                                     /*seed=*/67);
  constexpr size_t kShards = 4;
  storage::StorageParams store_params;
  store_params.paged = true;
  store_params.page_size = 256;
  store_params.cache_bytes = 16 * 256;  // tiny: force evictions mid-query
  store_params.cache_shards = 2;

  std::vector<std::string> paths;
  std::vector<std::unique_ptr<storage::PagedRecordStore>> stores;
  std::vector<index::StrgIndexParams> per_shard;
  for (size_t s = 0; s < kShards; ++s) {
    paths.push_back(::testing::TempDir() + "/deep_chain_" +
                    std::to_string(s) + ".pages");
    std::remove(paths.back().c_str());
    stores.push_back(
        storage::PagedRecordStore::Create(paths.back(), store_params)
            .value());
    index::StrgIndexParams ip = FastIndex();
    ip.paged_store = stores.back().get();
    per_shard.push_back(ip);
  }
  {
    ShardedEngineOptions so;
    so.num_shards = kShards;
    so.num_threads = 4;
    so.max_pending = 64;
    ShardedQueryEngine sharded(per_shard, so);
    std::vector<int> segment_ids = FeedAll(sharded, fx);

    std::atomic<bool> stop{false};
    std::thread writer([&] {
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const MultiFixture::StreamOg& s = fx.stream[i % fx.stream.size()];
        sharded.AddObjectGraph(segment_ids[s.video], fx.names[s.video], s.og,
                               synth::SynthScaling());
        ++i;
      }
    });

    constexpr size_t kClients = 3;
    constexpr size_t kPerClient = 24;
    std::atomic<size_t> answered{0};
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (size_t i = 0; i < kPerClient; ++i) {
          QueryOptions opts;
          opts.use_cache = (i % 2 == 0);  // exercise kResultCache too
          api::QuerySpec spec = api::QuerySpec::Similar(
              fx.queries[(c * kPerClient + i) % fx.queries.size()], 4);
          QueryHandle h = sharded.Submit(spec, opts,
                                         [](const QueryResult&) {});
          QueryResult r = h.Wait();  // kRequestState rendezvous
          if (r.status == StatusCode::kOk) {
            answered.fetch_add(1, std::memory_order_relaxed);
            EXPECT_LE(r.hits.size(), 4u);
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    stop.store(true, std::memory_order_relaxed);
    writer.join();

    EXPECT_GT(answered.load(), 0u);
    // The paged leg of the chain genuinely ran: pages moved through the
    // caches while the storm was on.
    uint64_t traffic = 0;
    for (const auto& store : stores) {
      traffic += store->cache_stats().hits + store->cache_stats().misses;
    }
    EXPECT_GT(traffic, 0u);

    // Still consistent afterwards.
    QueryResult after =
        sharded.Query(api::QuerySpec::Similar(fx.queries[0], 3));
    EXPECT_EQ(after.status, StatusCode::kOk);
    EXPECT_EQ(after.hits.size(), 3u);
  }
  for (const std::string& p : paths) std::remove(p.c_str());
}

TEST(ShardedEngine, ShardHintRestrictsScatter) {
  MultiFixture fx = MakeMultiFixture(/*num_videos=*/6, /*base_per_video=*/5,
                                     /*seed=*/17);
  ShardedEngineOptions so;
  so.num_shards = 4;
  so.num_threads = 2;
  ShardedQueryEngine sharded(FastIndex(), so);
  FeedAll(sharded, fx);

  QueryOptions opts;
  opts.use_cache = false;
  opts.shard_hint = 2;
  QueryResult r = sharded.Query(api::QuerySpec::Similar(fx.queries[0], 5),
                                opts);
  ASSERT_EQ(r.status, StatusCode::kOk);
  // Exactly one leg ran, on the hinted shard.
  std::string json = sharded.MetricsJson();
  size_t count = 0;
  size_t pos = 0;
  uint64_t total_legs = 0;
  while ((pos = json.find("{\"queries\":", pos)) != std::string::npos) {
    pos += sizeof("{\"queries\":") - 1;
    total_legs += std::strtoull(json.c_str() + pos, nullptr, 10);
    ++count;
  }
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(total_legs, 1u);
}

TEST(ShardedEngine, OverloadShedsTypedInsteadOfQueueing) {
  MultiFixture fx = MakeMultiFixture(/*num_videos=*/4, /*base_per_video=*/4,
                                     /*seed=*/41);
  ShardedEngineOptions so;
  so.num_shards = 4;
  so.num_threads = 2;
  so.max_pending = 0;  // admit nothing
  ShardedQueryEngine sharded(FastIndex(), so);
  FeedAll(sharded, fx);

  QueryResult r = sharded.Query(api::QuerySpec::Similar(fx.queries[0], 5));
  EXPECT_EQ(r.status, StatusCode::kOverloaded);
  EXPECT_TRUE(r.hits.empty());
  EXPECT_EQ(r.generation, 0u);
  EXPECT_GE(sharded.metrics().rejected_overloaded.load(), 1u);
}

// The TSan target: writers publishing, clients submitting with deadlines,
// a canceller racing completions — every handle must finalize exactly once
// with a typed status and the engine must stay consistent.
TEST(ShardedEngine, CancellationAndDeadlineRaceIsClean) {
  MultiFixture fx = MakeMultiFixture(/*num_videos=*/6, /*base_per_video=*/4,
                                     /*seed=*/53);
  ShardedEngineOptions so;
  so.num_shards = 4;
  so.num_threads = 4;
  so.max_pending = 64;
  ShardedQueryEngine sharded(FastIndex(), so);
  std::vector<int> segment_ids = FeedAll(sharded, fx);

  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 32;
  std::atomic<bool> stop{false};
  std::atomic<size_t> completions{0};
  std::atomic<size_t> bad_status{0};

  std::thread writer([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const MultiFixture::StreamOg& s = fx.stream[i % fx.stream.size()];
      sharded.AddObjectGraph(segment_ids[s.video], fx.names[s.video], s.og,
                             synth::SynthScaling());
      ++i;
    }
  });

  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < kPerClient; ++i) {
        QueryOptions opts;
        opts.use_cache = false;
        // Mix pre-expired, tight, and comfortable deadlines.
        switch (i % 3) {
          case 0: opts.timeout = std::chrono::microseconds(-1); break;
          case 1: opts.timeout = std::chrono::microseconds(200); break;
          default: opts.timeout = std::chrono::seconds(5); break;
        }
        api::QuerySpec spec = api::QuerySpec::Similar(
            fx.queries[(c * kPerClient + i) % fx.queries.size()], 4);
        QueryHandle h = sharded.Submit(spec, opts, [&](const QueryResult& r) {
          completions.fetch_add(1, std::memory_order_relaxed);
          switch (r.status) {
            case StatusCode::kOk:
            case StatusCode::kDeadlineExceeded:
            case StatusCode::kCancelled:
            case StatusCode::kOverloaded:
              break;
            default:
              bad_status.fetch_add(1, std::memory_order_relaxed);
          }
        });
        if (i % 4 == 0) h.Cancel();
        QueryResult r = h.Wait();
        if (r.status == StatusCode::kOk) {
          EXPECT_LE(r.hits.size(), 4u);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  EXPECT_EQ(completions.load(), kClients * kPerClient);
  EXPECT_EQ(bad_status.load(), 0u);
  // Quiesce: abandoned requests' legs may still be draining — they hold
  // the admission token until the last leg retires.
  for (int spin = 0; spin < 2000 && sharded.metrics().queue_depth.load() != 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(sharded.metrics().queue_depth.load(), 0);

  // The engine still answers correctly after the storm.
  QueryResult after = sharded.Query(api::QuerySpec::Similar(fx.queries[0], 3));
  EXPECT_EQ(after.status, StatusCode::kOk);
  EXPECT_EQ(after.hits.size(), 3u);
}

}  // namespace
}  // namespace strg::server
