// ctest-labels: unit
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "segment/shot_detector.h"
#include "video/renderer.h"
#include "video/scenes.h"

namespace strg::segment {
namespace {

std::vector<video::Frame> TwoShotStream(int shot_len = 20) {
  // Shot 1: lab scene; shot 2: traffic scene (very different histograms).
  video::SceneParams sp;
  sp.num_objects = 2;
  sp.noise_stddev = 0.0;
  video::SceneSpec lab = video::MakeLabScene(sp);
  video::SceneSpec traffic = video::MakeTrafficScene(sp);
  std::vector<video::Frame> frames;
  for (int t = 0; t < shot_len; ++t) {
    frames.push_back(video::RenderFrame(lab, t));
  }
  for (int t = 0; t < shot_len; ++t) {
    frames.push_back(video::RenderFrame(traffic, t));
  }
  return frames;
}

TEST(ShotDetector, FindsSceneCut) {
  auto frames = TwoShotStream();
  auto shots = DetectShots(frames);
  ASSERT_EQ(shots.size(), 2u);
  EXPECT_EQ(shots[0].first, 0);
  EXPECT_EQ(shots[0].second, 20);
  EXPECT_EQ(shots[1].first, 20);
  EXPECT_EQ(shots[1].second, 40);
}

TEST(ShotDetector, NoCutWithinOneScene) {
  video::SceneParams sp;
  sp.num_objects = 3;
  sp.noise_stddev = 2.0;
  video::SceneSpec lab = video::MakeLabScene(sp);
  ShotDetector detector;
  for (int t = 0; t < 40; ++t) {
    EXPECT_FALSE(detector.PushFrame(video::RenderFrame(lab, t)))
        << "frame " << t;
  }
  EXPECT_TRUE(detector.boundaries().empty());
  EXPECT_EQ(detector.frames_seen(), 40);
}

TEST(ShotDetector, MinShotLengthSuppressesDoubleCuts) {
  auto frames = TwoShotStream(3);  // cuts every 3 frames would violate min
  ShotDetectorParams params;
  params.min_shot_length = 10;
  auto shots = DetectShots(frames, params);
  EXPECT_EQ(shots.size(), 1u);  // cut at frame 3 suppressed
}

TEST(ShotDetector, EmptyStream) {
  EXPECT_TRUE(DetectShots({}).empty());
}

TEST(ProcessFrames, OneSegmentPerShot) {
  auto frames = TwoShotStream(24);
  api::PipelineParams pp;
  pp.segmenter.use_mean_shift = false;
  auto segments = api::ProcessFrames(frames, pp);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].num_frames, 24u);
  EXPECT_EQ(segments[1].num_frames, 24u);
  // Each shot carries its own background graph.
  EXPECT_GT(segments[0].decomposition.background.rag.NumNodes(), 0u);
  EXPECT_GT(segments[1].decomposition.background.rag.NumNodes(), 0u);
}

}  // namespace
}  // namespace strg::segment
