// ctest-labels: simd
//
// Dispatch-tier equivalence matrix. The simd layer's whole contract is that
// every tier is BITWISE identical to the scalar reference on the exact
// paths — not "close", identical — so these tests compare raw bit patterns
// (EXPECT_DOUBLE_EQ tolerates 4 ULP and would hide a drifting kernel).
// On a host whose best tier IS scalar the matrix degenerates to
// scalar-vs-scalar and passes vacuously; the forced-tier plumbing is still
// exercised.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "distance/dtw.h"
#include "distance/edr.h"
#include "distance/eged.h"
#include "distance/eged_fast.h"
#include "distance/lp.h"
#include "distance/simd/cells.h"
#include "distance/simd/dispatch.h"
#include "util/random.h"

namespace strg {
namespace {

namespace simd = dist::simd;

using dist::Dtw;
using dist::Edr;
using dist::EgedKernelStats;
using dist::EgedLowerBound;
using dist::EgedLowerBoundBatch;
using dist::EgedBatchBounded;
using dist::EgedMetric;
using dist::EgedMetricBounded;
using dist::EgedMetricFlat;
using dist::EgedWorkspace;
using dist::FeatureVec;
using dist::FlatSequence;
using dist::kFeatureDim;
using dist::LpDistanceValue;
using dist::PointDistance;
using dist::ReversedQuery;
using dist::Sequence;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Bit-pattern equality: the one comparison EXPECT_DOUBLE_EQ cannot do.
void ExpectBitEq(double x, double y, const char* what) {
  uint64_t xb = 0, yb = 0;
  std::memcpy(&xb, &x, sizeof(xb));
  std::memcpy(&yb, &y, sizeof(yb));
  EXPECT_EQ(xb, yb) << what << ": " << x << " vs " << y;
}

// Forces a tier for one scope and restores the previously active one (which
// may itself come from STRG_FORCE_SCALAR / STRG_SIMD_TIER).
class ScopedTier {
 public:
  explicit ScopedTier(simd::Tier tier)
      : saved_(simd::ActiveTier()), ok_(simd::ForceTier(tier)) {}
  ~ScopedTier() { simd::ForceTier(saved_); }
  ScopedTier(const ScopedTier&) = delete;
  ScopedTier& operator=(const ScopedTier&) = delete;
  bool ok() const { return ok_; }

 private:
  simd::Tier saved_;
  bool ok_;
};

Sequence RandomSequence(Rng* rng, size_t min_len, size_t max_len) {
  size_t len = static_cast<size_t>(rng->UniformInt(
      static_cast<int>(min_len), static_cast<int>(max_len)));
  Sequence s(len);
  FeatureVec cur{};
  for (size_t k = 0; k < kFeatureDim; ++k) cur[k] = rng->Uniform(0.0, 10.0);
  for (size_t i = 0; i < len; ++i) {
    for (size_t k = 0; k < kFeatureDim; ++k) cur[k] += rng->Gaussian(0.0, 0.5);
    s[i] = cur;
  }
  return s;
}

FeatureVec RandomGap(Rng* rng) {
  FeatureVec g{};
  for (size_t k = 0; k < kFeatureDim; ++k) g[k] = rng->Uniform(0.0, 5.0);
  return g;
}

// ---------------------------------------------------------------------------
// Dispatch plumbing.
// ---------------------------------------------------------------------------

TEST(SimdDispatch, TierTableIsSelfConsistent) {
  const simd::Tier detected = simd::DetectedTier();
  EXPECT_TRUE(detected == simd::Tier::kScalar ||
              detected == simd::Tier::kAvx2 || detected == simd::Tier::kNeon);
  // At most one vector ISA can exist in one build (x86-64 xor aarch64).
  EXPECT_FALSE(simd::OpsForTier(simd::Tier::kAvx2) != nullptr &&
               simd::OpsForTier(simd::Tier::kNeon) != nullptr);
  // Scalar is unconditionally available and the detected tier must be too.
  ASSERT_NE(simd::OpsForTier(simd::Tier::kScalar), nullptr);
  ASSERT_NE(simd::OpsForTier(detected), nullptr);
  for (simd::Tier tier : {simd::Tier::kScalar, simd::Tier::kAvx2,
                          simd::Tier::kNeon}) {
    EXPECT_NE(simd::TierName(tier), nullptr);
    const simd::KernelOps* ops = simd::OpsForTier(tier);
    if (ops == nullptr) continue;
    EXPECT_EQ(ops->tier, tier);
    // A tier with a missing kernel would crash at dispatch time; fail here.
    EXPECT_NE(ops->point_distance_batch, nullptr);
    EXPECT_NE(ops->eged_row, nullptr);
    EXPECT_NE(ops->dtw_row, nullptr);
    EXPECT_NE(ops->edr_row, nullptr);
    EXPECT_NE(ops->eged_diag, nullptr);
  }
}

TEST(SimdDispatch, ForceTierSwapsTheTableAndRejectsUnavailableTiers) {
  const simd::Tier before = simd::ActiveTier();
  {
    ScopedTier scalar(simd::Tier::kScalar);
    ASSERT_TRUE(scalar.ok());
    EXPECT_EQ(simd::ActiveTier(), simd::Tier::kScalar);
    EXPECT_EQ(simd::ActiveOps().tier, simd::Tier::kScalar);
    {
      ScopedTier best(simd::DetectedTier());
      ASSERT_TRUE(best.ok());
      EXPECT_EQ(simd::ActiveTier(), simd::DetectedTier());
    }
    EXPECT_EQ(simd::ActiveTier(), simd::Tier::kScalar);
  }
  EXPECT_EQ(simd::ActiveTier(), before);

  for (simd::Tier tier : {simd::Tier::kAvx2, simd::Tier::kNeon}) {
    if (simd::OpsForTier(tier) != nullptr) continue;
    EXPECT_FALSE(simd::ForceTier(tier))
        << simd::TierName(tier) << " is unavailable yet ForceTier accepted it";
    EXPECT_EQ(simd::ActiveTier(), before)
        << "a rejected ForceTier must leave the active tier unchanged";
  }
}

// ---------------------------------------------------------------------------
// Flat-form construction: the dispatched point_distance_batch feeds
// FlatSequence's gap costs, so the build itself must be tier-invariant, and
// the padded layout must hold exactly as the vector kernels assume.
// ---------------------------------------------------------------------------

TEST(SimdDispatch, FlatSequenceBuildIsTierInvariant) {
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    FeatureVec g = RandomGap(&rng);
    Sequence s = RandomSequence(&rng, 0, 40);
    FlatSequence at_scalar, at_best;
    {
      ScopedTier t(simd::Tier::kScalar);
      at_scalar.Assign(s, g);
    }
    {
      ScopedTier t(simd::DetectedTier());
      at_best.Assign(s, g);
    }
    ASSERT_EQ(at_scalar.size(), at_best.size());
    ExpectBitEq(at_scalar.gap_mass(), at_best.gap_mass(), "gap_mass");
    for (size_t i = 0; i < s.size(); ++i) {
      ExpectBitEq(at_scalar.gap_cost(i), at_best.gap_cost(i), "gap_cost");
    }
  }
}

TEST(SimdDispatch, FlatSequencePaddingLayoutHoldsEverywhere) {
  static_assert(FlatSequence::kStride == simd::kPaddedDim);
  static_assert(kFeatureDim == simd::kCellDim);
  Rng rng(102);
  FeatureVec g = RandomGap(&rng);
  Sequence s = RandomSequence(&rng, 5, 17);
  FlatSequence f(s, g);
  ASSERT_EQ(f.size(), s.size());
  ASSERT_EQ(f.t_stride(), s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    const double* p = f.point(i);
    for (size_t k = 0; k < kFeatureDim; ++k) {
      ExpectBitEq(p[k], s[i][k], "point coordinate");
      ExpectBitEq(f.transposed()[k * f.t_stride() + i], s[i][k],
                  "transposed mirror");
    }
    for (size_t k = kFeatureDim; k < FlatSequence::kStride; ++k) {
      // Pads must be +0.0 exactly — vector tiers load them unmasked.
      ExpectBitEq(p[k], 0.0, "pad lane");
    }
    // The gap cost is the dispatched point distance against g, which must
    // equal the canonical scalar cell on the padded row.
    ExpectBitEq(f.gap_cost(i), simd::PointDistCell(g.data(), p), "gap cost");
  }
}

TEST(SimdDispatch, ReversedQueryMirrorsTheFlatFormBackToFront) {
  Rng rng(103);
  FeatureVec g = RandomGap(&rng);
  Sequence s = RandomSequence(&rng, 4, 23);
  FlatSequence f(s, g);
  ReversedQuery rev;
  rev.Assign(f);
  ASSERT_EQ(rev.size(), f.size());
  ASSERT_EQ(rev.stride(), f.size());
  const size_t n = f.size();
  for (size_t c = 0; c < n; ++c) {
    for (size_t k = 0; k < kFeatureDim; ++k) {
      ExpectBitEq(rev.t()[k * rev.stride() + c],
                  f.transposed()[k * f.t_stride() + (n - 1 - c)],
                  "reversed transposed column");
    }
    ExpectBitEq(rev.gaps()[c], f.gap_cost(n - 1 - c), "reversed gap cost");
  }
}

// ---------------------------------------------------------------------------
// The equivalence matrix proper: EGED exact, EGED bounded (values AND
// stats), the batch forms, and the DTW/EDR/Lp baselines.
// ---------------------------------------------------------------------------

TEST(SimdDispatch, ExactEgedIsBitwiseIdenticalAcrossTiers) {
  // tau = inf routes vector tiers through the wavefront DP on everything
  // with length >= 4, so this is the wavefront's primary bit-identity test;
  // shorter inputs cover the banded twin's narrow-row fallback.
  Rng rng(104);
  EgedWorkspace ws;
  for (int trial = 0; trial < 120; ++trial) {
    FeatureVec g = trial % 3 == 0 ? FeatureVec{} : RandomGap(&rng);
    Sequence a = RandomSequence(&rng, 0, 80);
    Sequence b = RandomSequence(&rng, 0, 80);
    double ref, best;
    {
      ScopedTier t(simd::Tier::kScalar);
      FlatSequence fa(a, g), fb(b, g);
      ref = EgedMetricFlat(fa, fb, &ws);
    }
    {
      ScopedTier t(simd::DetectedTier());
      FlatSequence fa(a, g), fb(b, g);
      best = EgedMetricFlat(fa, fb, &ws);
    }
    ExpectBitEq(best, ref, "exact EGED across tiers");
    // And both must equal the allocating reference implementation.
    ExpectBitEq(ref, EgedMetric(a, b, g), "flat kernel vs reference");
  }
}

TEST(SimdDispatch, BoundedEgedMatchesScalarBitwiseIncludingStats) {
  // Sweeps taus across every routing regime: 0 (cascade / instant abandon),
  // below the exact distance (banded DP, often abandoning), at and above it
  // (completed DP), and +inf (wavefront). Both the returned value and the
  // prune/eval/abandon accounting must be identical — the tier is supposed
  // to be a pure speed decision, invisible in every observable.
  Rng rng(105);
  EgedWorkspace ws;
  for (int trial = 0; trial < 200; ++trial) {
    FeatureVec g = RandomGap(&rng);
    Sequence a = RandomSequence(&rng, 0, 48);
    Sequence b = RandomSequence(&rng, 0, 48);
    const double exact = EgedMetric(a, b, g);
    const double taus[] = {0.0,         exact * 0.25, exact * 0.9,
                           exact,       exact * 1.5,  kInf};
    for (double tau : taus) {
      double ref, best;
      EgedKernelStats ref_stats, best_stats;
      {
        ScopedTier t(simd::Tier::kScalar);
        FlatSequence fa(a, g), fb(b, g);
        ref = EgedMetricBounded(fa, fb, tau, &ws, &ref_stats);
      }
      {
        ScopedTier t(simd::DetectedTier());
        FlatSequence fa(a, g), fb(b, g);
        best = EgedMetricBounded(fa, fb, tau, &ws, &best_stats);
      }
      ExpectBitEq(best, ref, "bounded EGED across tiers");
      EXPECT_EQ(best_stats.dp_evals, ref_stats.dp_evals);
      EXPECT_EQ(best_stats.lb_prunes, ref_stats.lb_prunes);
      EXPECT_EQ(best_stats.early_abandons, ref_stats.early_abandons);
    }
  }
}

TEST(SimdDispatch, BatchedKernelsMatchIndividualCallsBitwise) {
  Rng rng(106);
  FeatureVec g = RandomGap(&rng);
  EgedWorkspace ws;
  Sequence q = RandomSequence(&rng, 12, 40);
  FlatSequence fq(q, g);
  std::vector<FlatSequence> cands;
  for (int i = 0; i < 40; ++i) {
    // Include empty and length-1 candidates so the batch's guard paths run.
    size_t min_len = i % 7 == 0 ? 0 : 1;
    cands.emplace_back(RandomSequence(&rng, min_len, 40), g);
  }
  std::vector<const FlatSequence*> ptrs;
  std::vector<double> taus;
  for (size_t i = 0; i < cands.size(); ++i) {
    ptrs.push_back(&cands[i]);
    double exact = EgedMetricFlat(fq, cands[i], &ws);
    taus.push_back(i % 2 == 0 ? exact * 0.6 : exact * 1.1);
  }
  for (simd::Tier tier : {simd::Tier::kScalar, simd::DetectedTier()}) {
    ScopedTier t(tier);
    ASSERT_TRUE(t.ok());
    std::vector<double> batch_out(cands.size());
    EgedKernelStats batch_stats, loop_stats;
    EgedBatchBounded(fq, ptrs.data(), taus.data(), cands.size(),
                     batch_out.data(), &ws, &batch_stats);
    for (size_t i = 0; i < cands.size(); ++i) {
      double one = EgedMetricBounded(fq, cands[i], taus[i], &ws, &loop_stats);
      ExpectBitEq(batch_out[i], one, "batched vs individual bounded EGED");
    }
    EXPECT_EQ(batch_stats.dp_evals, loop_stats.dp_evals);
    EXPECT_EQ(batch_stats.lb_prunes, loop_stats.lb_prunes);
    EXPECT_EQ(batch_stats.early_abandons, loop_stats.early_abandons);

    std::vector<double> lb_out(cands.size());
    EgedLowerBoundBatch(fq, ptrs.data(), cands.size(), lb_out.data());
    for (size_t i = 0; i < cands.size(); ++i) {
      ExpectBitEq(lb_out[i], EgedLowerBound(fq, cands[i]),
                  "batched vs individual lower bound");
    }
  }
}

TEST(SimdDispatch, BaselineKernelsMatchScalarBitwise) {
  Rng rng(107);
  for (int trial = 0; trial < 80; ++trial) {
    Sequence a = RandomSequence(&rng, 1, 60);
    Sequence b = RandomSequence(&rng, 1, 60);
    // One epsilon sits exactly on a realized point distance so the EDR
    // match test's boundary ULP is exercised (the tiers must compare the
    // same sqrt'd value against it and take the same branch).
    const double eps_exact = PointDistance(a[0], b[0]);
    const double epsilons[] = {0.5, eps_exact, 4.0};
    double dtw_ref, lp_ref, edr_ref[3];
    {
      ScopedTier t(simd::Tier::kScalar);
      dtw_ref = Dtw(a, b);
      lp_ref = LpDistanceValue(a, b, 2.0);
      for (int e = 0; e < 3; ++e) edr_ref[e] = Edr(a, b, epsilons[e]);
    }
    {
      ScopedTier t(simd::DetectedTier());
      ExpectBitEq(Dtw(a, b), dtw_ref, "DTW across tiers");
      ExpectBitEq(LpDistanceValue(a, b, 2.0), lp_ref, "Lp across tiers");
      for (int e = 0; e < 3; ++e) {
        ExpectBitEq(Edr(a, b, epsilons[e]), edr_ref[e], "EDR across tiers");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Edge cases: the inputs mostly absent from random sweeps.
// ---------------------------------------------------------------------------

TEST(SimdDispatch, EdgeCasesAreTierInvariant) {
  EgedWorkspace ws;
  FeatureVec g{};
  for (size_t k = 0; k < kFeatureDim; ++k) g[k] = 0.25 * double(k + 1);

  const Sequence empty;
  Sequence one_a(1), one_b(1);
  for (size_t k = 0; k < kFeatureDim; ++k) {
    one_a[0][k] = 1.0 + double(k);
    one_b[0][k] = 2.0 - double(k);
  }
  // Signed zeros: (-0.0) - (+0.0) = -0.0 squares to +0.0; the result must
  // not pick up a sign bit on any tier.
  Sequence zpos(6), zneg(6);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t k = 0; k < kFeatureDim; ++k) {
      zpos[i][k] = 0.0;
      zneg[i][k] = i % 2 == 0 ? -0.0 : 0.0;
    }
  }
  // Subnormal coordinates: differences underflow gradually; every tier must
  // round them identically (no FTZ/DAZ anywhere in the build).
  Sequence sub_a(5), sub_b(5);
  const double denorm = std::numeric_limits<double>::denorm_min();
  for (size_t i = 0; i < 5; ++i) {
    for (size_t k = 0; k < kFeatureDim; ++k) {
      sub_a[i][k] = denorm * double(3 * i + k + 1);
      sub_b[i][k] = denorm * double(7 * i + 2 * k + 5);
    }
  }

  struct Case {
    const Sequence* a;
    const Sequence* b;
    double tau;
  };
  const Case cases[] = {
      {&empty, &empty, kInf}, {&empty, &zpos, kInf},  {&zpos, &empty, 0.0},
      {&one_a, &one_b, kInf}, {&one_a, &one_b, 0.0},  {&one_a, &zpos, kInf},
      {&zpos, &zneg, kInf},   {&zpos, &zneg, 0.0},    {&sub_a, &sub_b, kInf},
      {&sub_a, &sub_b, 0.0},  {&zpos, &zpos, 0.0},
  };
  for (const Case& c : cases) {
    double ref, best;
    EgedKernelStats ref_stats, best_stats;
    {
      ScopedTier t(simd::Tier::kScalar);
      FlatSequence fa(*c.a, g), fb(*c.b, g);
      ref = EgedMetricBounded(fa, fb, c.tau, &ws, &ref_stats);
    }
    {
      ScopedTier t(simd::DetectedTier());
      FlatSequence fa(*c.a, g), fb(*c.b, g);
      best = EgedMetricBounded(fa, fb, c.tau, &ws, &best_stats);
    }
    ExpectBitEq(best, ref, "edge-case bounded EGED across tiers");
    EXPECT_EQ(best_stats.dp_evals, ref_stats.dp_evals);
    EXPECT_EQ(best_stats.lb_prunes, ref_stats.lb_prunes);
    EXPECT_EQ(best_stats.early_abandons, ref_stats.early_abandons);
    EXPECT_FALSE(std::signbit(best)) << "distance picked up a -0.0";
  }

  // tau = 0 against an identical sequence: 0 <= tau, so the kernel must
  // return the exact 0.0 (not an abandon sentinel) on every tier.
  for (simd::Tier tier : {simd::Tier::kScalar, simd::DetectedTier()}) {
    ScopedTier t(tier);
    FlatSequence fa(zpos, g), fb(zpos, g);
    ExpectBitEq(EgedMetricBounded(fa, fb, 0.0, &ws), 0.0,
                "self-distance at tau = 0");
  }
}

}  // namespace
}  // namespace strg
