// ctest-labels: unit
#include <gtest/gtest.h>

#include <cmath>

#include "strg/smoothing.h"
#include "util/random.h"

namespace strg::core {
namespace {

Og NoisyLine(double noise_sigma, uint64_t seed = 3, int n = 30) {
  Rng rng(seed);
  Og og;
  for (int i = 0; i < n; ++i) {
    graph::NodeAttr a;
    a.cx = i * 2.0 + rng.Gaussian(0, noise_sigma);
    a.cy = 10.0 + rng.Gaussian(0, noise_sigma);
    a.size = 50.0 + rng.Gaussian(0, noise_sigma);
    a.color = {100, 100, 100};
    og.sequence.push_back(a);
  }
  return og;
}

double RoughnessY(const Og& og) {
  double acc = 0.0;
  for (size_t i = 1; i < og.sequence.size(); ++i) {
    acc += std::fabs(og.sequence[i].cy - og.sequence[i - 1].cy);
  }
  return acc;
}

TEST(Smoothing, ReducesJitter) {
  Og noisy = NoisyLine(1.5);
  Og smooth = SmoothOg(noisy, {.window = 2, .strength = 1.0});
  EXPECT_LT(RoughnessY(smooth), 0.6 * RoughnessY(noisy));
}

TEST(Smoothing, PreservesCleanTrajectory) {
  Og clean = NoisyLine(0.0);
  Og smooth = SmoothOg(clean, {.window = 2, .strength = 1.0});
  // A straight constant-speed line is a fixed point of a centered moving
  // average (up to the ends).
  for (size_t i = 2; i + 2 < clean.sequence.size(); ++i) {
    EXPECT_NEAR(smooth.sequence[i].cx, clean.sequence[i].cx, 1e-9);
    EXPECT_NEAR(smooth.sequence[i].cy, clean.sequence[i].cy, 1e-9);
  }
}

TEST(Smoothing, StrengthInterpolates) {
  Og noisy = NoisyLine(1.5);
  Og half = SmoothOg(noisy, {.window = 2, .strength = 0.5});
  Og full = SmoothOg(noisy, {.window = 2, .strength = 1.0});
  double r_noisy = RoughnessY(noisy);
  double r_half = RoughnessY(half);
  double r_full = RoughnessY(full);
  EXPECT_LT(r_full, r_half);
  EXPECT_LT(r_half, r_noisy);
}

TEST(Smoothing, LeavesColorAndMetadataAlone) {
  Og noisy = NoisyLine(1.0);
  noisy.id = 9;
  noisy.start_frame = 17;
  Og smooth = SmoothOg(noisy, {.window = 1, .strength = 1.0});
  EXPECT_EQ(smooth.id, 9);
  EXPECT_EQ(smooth.start_frame, 17);
  ASSERT_EQ(smooth.Length(), noisy.Length());
  for (size_t i = 0; i < noisy.Length(); ++i) {
    EXPECT_EQ(smooth.sequence[i].color, noisy.sequence[i].color);
  }
}

TEST(Smoothing, NoopCases) {
  Og noisy = NoisyLine(1.0);
  Og w0 = SmoothOg(noisy, {.window = 0, .strength = 1.0});
  EXPECT_DOUBLE_EQ(RoughnessY(w0), RoughnessY(noisy));
  Og s0 = SmoothOg(noisy, {.window = 2, .strength = 0.0});
  EXPECT_DOUBLE_EQ(RoughnessY(s0), RoughnessY(noisy));

  Og tiny;
  graph::NodeAttr a;
  tiny.sequence = {a, a};
  EXPECT_EQ(SmoothOg(tiny, {.window = 3, .strength = 1.0}).Length(), 2u);
}

TEST(Smoothing, DecompositionHelperSmoothsAllOgs) {
  Decomposition d;
  d.object_graphs = {NoisyLine(1.5, 1), NoisyLine(1.5, 2)};
  double before =
      RoughnessY(d.object_graphs[0]) + RoughnessY(d.object_graphs[1]);
  SmoothDecomposition(&d, {.window = 2, .strength = 1.0});
  double after =
      RoughnessY(d.object_graphs[0]) + RoughnessY(d.object_graphs[1]);
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace strg::core
