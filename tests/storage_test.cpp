// ctest-labels: unit
#include <gtest/gtest.h>

#include <cstdio>

#include "core/persistence.h"
#include "storage/catalog.h"
#include "storage/serializer.h"
#include "util/random.h"
#include "video/scenes.h"

namespace strg::storage {
namespace {

TEST(Serializer, PrimitivesRoundTrip) {
  Writer w;
  w.PutU8(200);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutDouble(-3.14159);
  w.PutString("hello strg");
  Reader r(w.bytes());
  EXPECT_EQ(r.GetU8(), 200);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(r.GetDouble(), -3.14159);
  EXPECT_EQ(r.GetString(), "hello strg");
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serializer, VarintRoundTripAcrossMagnitudes) {
  Writer w;
  std::vector<uint64_t> values{0, 1, 127, 128, 300, 16384, 1u << 31,
                               0xFFFFFFFFFFFFFFFFULL};
  for (uint64_t v : values) w.PutVarint(v);
  Reader r(w.bytes());
  for (uint64_t v : values) EXPECT_EQ(r.GetVarint(), v);
}

TEST(Serializer, TruncatedInputThrows) {
  Writer w;
  w.PutU64(42);
  std::string bytes = w.Take();
  bytes.resize(4);
  Reader r(bytes);
  EXPECT_THROW(r.GetU64(), std::out_of_range);
}

TEST(Serializer, SequenceRoundTrip) {
  Rng rng(5);
  dist::Sequence seq(7);
  for (auto& v : seq) {
    for (double& x : v) x = rng.Uniform(-5, 5);
  }
  Writer w;
  EncodeSequence(seq, &w);
  Reader r(w.bytes());
  dist::Sequence back = DecodeSequence(&r);
  ASSERT_EQ(back.size(), seq.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    for (size_t k = 0; k < dist::kFeatureDim; ++k) {
      EXPECT_DOUBLE_EQ(back[i][k], seq[i][k]);
    }
  }
}

core::Og MakeOg(uint64_t seed) {
  Rng rng(seed);
  core::Og og;
  og.id = 7;
  og.start_frame = 42;
  for (int i = 0; i < 10; ++i) {
    graph::NodeAttr a;
    a.size = rng.Uniform(1, 100);
    a.color = {rng.Uniform(0, 255), rng.Uniform(0, 255), rng.Uniform(0, 255)};
    a.cx = rng.Uniform(0, 80);
    a.cy = rng.Uniform(0, 60);
    og.sequence.push_back(a);
  }
  og.member_orgs = {3, 5, 900};
  return og;
}

TEST(Serializer, OgRoundTrip) {
  core::Og og = MakeOg(3);
  Writer w;
  EncodeOg(og, &w);
  Reader r(w.bytes());
  core::Og back = DecodeOg(&r);
  EXPECT_EQ(back.id, og.id);
  EXPECT_EQ(back.start_frame, og.start_frame);
  ASSERT_EQ(back.Length(), og.Length());
  EXPECT_EQ(back.member_orgs, og.member_orgs);
  for (size_t i = 0; i < og.Length(); ++i) {
    EXPECT_DOUBLE_EQ(back.sequence[i].cx, og.sequence[i].cx);
    EXPECT_DOUBLE_EQ(back.sequence[i].size, og.sequence[i].size);
  }
}

TEST(Serializer, RagRoundTripPreservesEdges) {
  graph::Rag rag;
  graph::NodeAttr a;
  a.size = 10;
  int n0 = rag.AddNode(a);
  a.cx = 5;
  int n1 = rag.AddNode(a);
  a.cy = 7;
  int n2 = rag.AddNode(a);
  rag.AddEdge(n0, n1);
  rag.AddEdge(n1, n2);

  Writer w;
  EncodeRag(rag, &w);
  Reader r(w.bytes());
  graph::Rag back = DecodeRag(&r);
  EXPECT_EQ(back.NumNodes(), 3u);
  EXPECT_EQ(back.NumEdges(), 2u);
  EXPECT_TRUE(back.HasEdge(n0, n1));
  EXPECT_TRUE(back.HasEdge(n1, n2));
  EXPECT_FALSE(back.HasEdge(n0, n2));
  EXPECT_DOUBLE_EQ(back.EdgeAttr(n0, n1)->distance,
                   rag.EdgeAttr(n0, n1)->distance);
}

TEST(Catalog, SerializeDeserializeRoundTrip) {
  Catalog catalog;
  CatalogSegment seg;
  seg.video_name = "cam-1";
  seg.frame_width = 80;
  seg.frame_height = 60;
  seg.num_frames = 500;
  seg.ogs = {MakeOg(1), MakeOg(2)};
  graph::NodeAttr bg_attr;
  bg_attr.size = 999;
  seg.background.rag.AddNode(bg_attr);
  catalog.AddSegment(seg);

  Catalog back = Catalog::TryDeserialize(catalog.Serialize()).value();
  ASSERT_EQ(back.NumSegments(), 1u);
  EXPECT_EQ(back.TotalOgs(), 2u);
  const CatalogSegment& s = back.segments()[0];
  EXPECT_EQ(s.video_name, "cam-1");
  EXPECT_EQ(s.num_frames, 500u);
  EXPECT_EQ(s.background.rag.NumNodes(), 1u);
  EXPECT_EQ(s.ogs[0].start_frame, 42);
}

TEST(Catalog, RejectsBadMagicAndTrailingBytes) {
  EXPECT_FALSE(Catalog::TryDeserialize("garbage-bytes").ok());
  Catalog catalog;
  std::string bytes = catalog.Serialize();
  bytes += "x";
  EXPECT_FALSE(Catalog::TryDeserialize(bytes).ok());
}

TEST(Catalog, FileRoundTrip) {
  Catalog catalog;
  CatalogSegment seg;
  seg.video_name = "file-test";
  seg.ogs = {MakeOg(9)};
  catalog.AddSegment(seg);

  std::string path = ::testing::TempDir() + "/strg_catalog_test.bin";
  ASSERT_TRUE(catalog.TrySaveToFile(path).ok());
  Catalog back = Catalog::TryLoadFromFile(path).value();
  EXPECT_EQ(back.NumSegments(), 1u);
  EXPECT_EQ(back.segments()[0].video_name, "file-test");
  std::remove(path.c_str());
}

TEST(Persistence, DatabaseSurvivesSaveAndRestore) {
  using namespace strg::api;
  video::SceneParams sp;
  sp.num_objects = 4;
  sp.spawn_gap = 26;
  sp.noise_stddev = 0.0;
  PipelineParams pp;
  pp.segmenter.use_mean_shift = false;
  SegmentResult segment = ProcessScene(video::MakeLabScene(sp), pp);

  index::StrgIndexParams ip;
  ip.num_clusters = 2;
  VideoDatabase original(ip);
  original.AddVideo("lab", segment);

  Catalog catalog;
  catalog.AddSegment(ToCatalogSegment("lab", segment));
  Catalog reloaded = Catalog::TryDeserialize(catalog.Serialize()).value();
  VideoDatabase restored = RestoreVideoDatabase(reloaded, ip);

  EXPECT_EQ(restored.NumVideos(), original.NumVideos());
  EXPECT_EQ(restored.NumObjectGraphs(), original.NumObjectGraphs());

  // Same query must return the same answer set (index rebuild is
  // deterministic for fixed parameters).
  const core::Og& probe = segment.decomposition.object_graphs[0];
  auto a = original.FindSimilar(probe, 3, segment.Scaling());
  auto b = restored.FindSimilar(probe, 3, segment.Scaling());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].og_id, b[i].og_id);
    EXPECT_DOUBLE_EQ(a[i].distance, b[i].distance);
  }
}

}  // namespace
}  // namespace strg::storage
