// Negative control: acquires the same strg::Mutex twice on one path (a
// guaranteed self-deadlock with std::mutex underneath). Under Clang
// -Wthread-safety -Werror this must FAIL to compile ("acquiring mutex
// 'mu_' that is already held").
#include "util/sync.h"

namespace {

class Counter {
 public:
  void Increment() STRG_EXCLUDES(mu_) {
    strg::MutexLock outer(mu_);
    strg::MutexLock inner(mu_);  // BUG under test: mu_ is already held
    ++value_;
  }

 private:
  strg::Mutex mu_;
  int value_ STRG_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
