// Negative control: writes a STRG_GUARDED_BY field without holding its
// mutex. Under Clang -Wthread-safety -Werror this must FAIL to compile
// ("writing variable 'value_' requires holding mutex 'mu_'").
#include "util/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    ++value_;  // BUG under test: no MutexLock on mu_
  }

 private:
  strg::Mutex mu_;
  int value_ STRG_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
