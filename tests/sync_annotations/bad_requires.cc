// Negative control: calls a STRG_REQUIRES(mu_) method without the lock.
// Under Clang -Wthread-safety -Werror this must FAIL to compile ("calling
// function 'IncrementLocked' requires holding mutex 'mu_'").
#include "util/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    IncrementLocked();  // BUG under test: caller never acquired mu_
  }

 private:
  void IncrementLocked() STRG_REQUIRES(mu_) { ++value_; }

  strg::Mutex mu_;
  int value_ STRG_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
