// Positive control: the CondVar wait-loop idiom used by ThreadPool — an
// explicit predicate loop under MutexLock, with CondVar::Wait's
// STRG_REQUIRES(mu) satisfied by the scoped capability.
#include "util/sync.h"

namespace {

class Gate {
 public:
  void Open() STRG_EXCLUDES(mu_) {
    {
      strg::MutexLock lock(mu_);
      open_ = true;
    }
    cv_.NotifyAll();
  }

  void Await() STRG_EXCLUDES(mu_) {
    strg::MutexLock lock(mu_);
    while (!open_) cv_.Wait(mu_);
  }

 private:
  strg::Mutex mu_;
  strg::CondVar cv_;
  bool open_ STRG_GUARDED_BY(mu_) = false;
};

}  // namespace

int main() {
  Gate g;
  g.Open();
  g.Await();
  return 0;
}
