// Positive control: the sanctioned annotation patterns — guarded fields
// accessed under MutexLock, a *Locked() helper gated by STRG_REQUIRES, and
// a public entry point tagged STRG_EXCLUDES. Must compile under every
// compiler (annotations are no-ops off-Clang) and stay warning-free under
// Clang's -Wthread-safety -Werror.
#include "util/sync.h"

namespace {

class Counter {
 public:
  void Increment() STRG_EXCLUDES(mu_) {
    strg::MutexLock lock(mu_);
    IncrementLocked();
  }

  int Get() STRG_EXCLUDES(mu_) {
    strg::MutexLock lock(mu_);
    return value_;
  }

 private:
  void IncrementLocked() STRG_REQUIRES(mu_) { ++value_; }

  strg::Mutex mu_;
  int value_ STRG_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Get() == 1 ? 0 : 1;
}
