# Negative-compilation matrix for the annotated sync layer (util/sync.h).
#
# Invoked by ctest in script mode:
#   cmake -DSTRG_CXX=... -DSTRG_CXX_ID=... -DSTRG_SRC_DIR=...
#         -DSTRG_SNIPPET_DIR=... -DSTRG_WORK_DIR=... -P matrix.cmake
#
# Matrix:
#   good_*.cc  must compile with the build compiler (annotations are no-op
#              macros off-Clang), and must additionally compile warning-free
#              under Clang -Wthread-safety -Wthread-safety-beta -Werror.
#   bad_*.cc   must FAIL to compile under Clang thread-safety analysis.
#              These are only checkable with a Clang; without one the
#              negative half is skipped loudly with the reason.
#
# The analysis compiler is STRG_CXX when the build compiler is already
# Clang; otherwise we hunt for a clang++ on PATH so a GCC-configured tree
# still exercises the full matrix on machines that have Clang installed.

cmake_minimum_required(VERSION 3.16)

foreach(var STRG_CXX STRG_CXX_ID STRG_SRC_DIR STRG_SNIPPET_DIR STRG_WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "matrix.cmake: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${STRG_WORK_DIR}")

set(BASE_FLAGS -std=c++20 -fsyntax-only -I "${STRG_SRC_DIR}")
set(TSA_FLAGS -Wthread-safety -Wthread-safety-beta -Werror)

# --- Locate a Clang for the thread-safety half of the matrix. ------------
set(ANALYSIS_CXX "")
if(STRG_CXX_ID MATCHES "Clang")
  set(ANALYSIS_CXX "${STRG_CXX}")
else()
  find_program(STRG_FOUND_CLANG NAMES clang++ clang++-20 clang++-19
               clang++-18 clang++-17 clang++-16 clang++-15 clang++-14)
  if(STRG_FOUND_CLANG)
    set(ANALYSIS_CXX "${STRG_FOUND_CLANG}")
  endif()
endif()

file(GLOB GOOD_SNIPPETS "${STRG_SNIPPET_DIR}/good_*.cc")
file(GLOB BAD_SNIPPETS "${STRG_SNIPPET_DIR}/bad_*.cc")
if(NOT GOOD_SNIPPETS OR NOT BAD_SNIPPETS)
  message(FATAL_ERROR "matrix.cmake: no snippets found in ${STRG_SNIPPET_DIR}")
endif()

set(FAILURES "")

function(compile_snippet compiler snippet expect_success extra_flags label)
  get_filename_component(name "${snippet}" NAME)
  execute_process(
    COMMAND "${compiler}" ${BASE_FLAGS} ${extra_flags} "${snippet}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(expect_success AND NOT rc EQUAL 0)
    message(STATUS "FAIL  [${label}] ${name}: expected compile success, got rc=${rc}")
    message(STATUS "${err}")
    set(FAILURES "${FAILURES};${label}:${name}" PARENT_SCOPE)
  elseif(NOT expect_success AND rc EQUAL 0)
    message(STATUS "FAIL  [${label}] ${name}: expected a thread-safety compile error, but it compiled")
    set(FAILURES "${FAILURES};${label}:${name}" PARENT_SCOPE)
  else()
    message(STATUS "ok    [${label}] ${name}")
  endif()
endfunction()

# --- Positive half: good snippets compile with the build compiler. -------
foreach(snippet ${GOOD_SNIPPETS})
  compile_snippet("${STRG_CXX}" "${snippet}" TRUE "" "build-cxx")
endforeach()

if(ANALYSIS_CXX)
  message(STATUS "Thread-safety analysis compiler: ${ANALYSIS_CXX}")
  # Good snippets must be warning-free under the analysis.
  foreach(snippet ${GOOD_SNIPPETS})
    compile_snippet("${ANALYSIS_CXX}" "${snippet}" TRUE "${TSA_FLAGS}" "tsa-good")
  endforeach()
  # Bad snippets must be rejected by the analysis.
  foreach(snippet ${BAD_SNIPPETS})
    compile_snippet("${ANALYSIS_CXX}" "${snippet}" FALSE "${TSA_FLAGS}" "tsa-bad")
  endforeach()
else()
  message(STATUS "==================================================================")
  message(STATUS "SKIP: negative thread-safety matrix NOT run.")
  message(STATUS "Reason: no Clang available (build compiler is '${STRG_CXX_ID}',")
  message(STATUS "        and no clang++ found on PATH). The STRG_* annotations are")
  message(STATUS "        no-op macros off-Clang, so bad_*.cc would compile cleanly")
  message(STATUS "        and the test would prove nothing. Install clang to run it.")
  message(STATUS "==================================================================")
endif()

if(FAILURES)
  message(FATAL_ERROR "sync annotation matrix failed: ${FAILURES}")
endif()
message(STATUS "sync annotation matrix passed")
