// ctest-labels: unit
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "synth/generator.h"
#include "synth/patterns.h"

namespace strg::synth {
namespace {

TEST(Patterns, FortyEightPatternsWithPaperFamilies) {
  auto patterns = MakePatterns(100.0);
  ASSERT_EQ(patterns.size(), 48u);
  int vertical = 0, horizontal = 0, diagonal = 0, uturn = 0;
  for (const PatternSpec& p : patterns) {
    if (p.family == "vertical") ++vertical;
    if (p.family == "horizontal") ++horizontal;
    if (p.family == "diagonal") ++diagonal;
    if (p.family == "uturn") ++uturn;
  }
  // Section 6.1: vertical (12), horizontal (12), diagonal (8), U-turn (16).
  EXPECT_EQ(vertical, 12);
  EXPECT_EQ(horizontal, 12);
  EXPECT_EQ(diagonal, 8);
  EXPECT_EQ(uturn, 16);
}

TEST(Patterns, IdsAreDenseAndUnique) {
  auto patterns = MakePatterns(100.0);
  std::set<int> ids;
  for (const PatternSpec& p : patterns) ids.insert(p.id);
  EXPECT_EQ(ids.size(), 48u);
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), 47);
}

TEST(Patterns, MixesSizesAndLengths) {
  auto patterns = MakePatterns(100.0);
  std::set<double> sizes;
  std::set<size_t> lengths;
  for (const PatternSpec& p : patterns) {
    sizes.insert(p.object_size);
    lengths.insert(p.base_length);
  }
  EXPECT_GE(sizes.size(), 3u);
  EXPECT_GE(lengths.size(), 3u);
}

TEST(Patterns, VerticalPathsAreVertical) {
  for (const PatternSpec& p : MakePatterns(100.0)) {
    if (p.family != "vertical") continue;
    video::Point a = p.path.At(0.0), b = p.path.At(1.0);
    EXPECT_NEAR(a.x, b.x, 1e-9);
    EXPECT_GT(std::fabs(b.y - a.y), 50.0);
  }
}

TEST(Patterns, UTurnsReturnNearStart) {
  for (const PatternSpec& p : MakePatterns(100.0)) {
    if (p.family != "uturn") continue;
    video::Point a = p.path.At(0.0), b = p.path.At(1.0);
    double net = std::hypot(b.x - a.x, b.y - a.y);
    EXPECT_LT(net, 0.2 * p.path.Length());  // comes back near the start
  }
}

TEST(Generator, DatasetShapeMatchesParams) {
  SynthParams params;
  params.items_per_cluster = 4;
  SynthDataset ds = GenerateSyntheticOgs(params);
  EXPECT_EQ(ds.NumClusters(), 48u);
  EXPECT_EQ(ds.ogs.size(), 48u * 4u);
  EXPECT_EQ(ds.labels.size(), ds.ogs.size());
  for (int label : ds.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 48);
  }
}

TEST(Generator, Deterministic) {
  SynthParams params;
  params.items_per_cluster = 2;
  SynthDataset a = GenerateSyntheticOgs(params);
  SynthDataset b = GenerateSyntheticOgs(params);
  ASSERT_EQ(a.ogs.size(), b.ogs.size());
  for (size_t i = 0; i < a.ogs.size(); ++i) {
    ASSERT_EQ(a.ogs[i].Length(), b.ogs[i].Length());
    EXPECT_DOUBLE_EQ(a.ogs[i].sequence[0].cx, b.ogs[i].sequence[0].cx);
  }
}

TEST(Generator, NoiseIncreasesSpread) {
  SynthParams clean;
  clean.items_per_cluster = 3;
  clean.noise_pct = 0.0;
  clean.cluster_sigma = 0.0;
  clean.length_jitter = 0.0;
  SynthParams noisy = clean;
  noisy.noise_pct = 25.0;

  SynthDataset a = GenerateSyntheticOgs(clean);
  SynthDataset b = GenerateSyntheticOgs(noisy);

  // Deviation of item trajectories from their pattern centroids.
  auto spread = [](const SynthDataset& ds) {
    double acc = 0;
    size_t n = 0;
    for (size_t i = 0; i < ds.ogs.size(); ++i) {
      const core::Og& truth = ds.true_ogs[static_cast<size_t>(ds.labels[i])];
      const core::Og& og = ds.ogs[i];
      size_t len = std::min(og.Length(), truth.Length());
      for (size_t t = 0; t < len; ++t) {
        acc += std::hypot(og.sequence[t].cx - truth.sequence[t].cx,
                          og.sequence[t].cy - truth.sequence[t].cy);
        ++n;
      }
    }
    return acc / static_cast<double>(n);
  };
  EXPECT_GT(spread(b), spread(a) + 1.0);
}

TEST(Generator, CleanDataMatchesTrueCentroidExactly) {
  SynthParams params;
  params.items_per_cluster = 1;
  params.noise_pct = 0.0;
  params.cluster_sigma = 0.0;
  params.length_jitter = 0.0;
  SynthDataset ds = GenerateSyntheticOgs(params);
  for (size_t i = 0; i < ds.ogs.size(); ++i) {
    const core::Og& truth = ds.true_ogs[static_cast<size_t>(ds.labels[i])];
    ASSERT_EQ(ds.ogs[i].Length(), truth.Length());
    for (size_t t = 0; t < truth.Length(); ++t) {
      EXPECT_NEAR(ds.ogs[i].sequence[t].cx, truth.sequence[t].cx, 1e-9);
      EXPECT_NEAR(ds.ogs[i].sequence[t].cy, truth.sequence[t].cy, 1e-9);
    }
  }
}

TEST(Generator, SequencesViewMatchesOgs) {
  SynthParams params;
  params.items_per_cluster = 2;
  SynthDataset ds = GenerateSyntheticOgs(params);
  auto seqs = ds.Sequences(SynthScaling(params.field));
  ASSERT_EQ(seqs.size(), ds.ogs.size());
  for (size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i].size(), ds.ogs[i].Length());
  }
  auto true_seqs = ds.TrueSequences(SynthScaling(params.field));
  EXPECT_EQ(true_seqs.size(), 48u);
}

TEST(TrajectoryToOg, BuildsTemporalSubgraphFormat) {
  std::vector<video::Point> pts{{0, 0}, {1, 1}, {2, 2}};
  core::Og og = TrajectoryToOg(pts, 25.0, 7);
  EXPECT_EQ(og.Length(), 3u);
  EXPECT_EQ(og.start_frame, 7);
  EXPECT_DOUBLE_EQ(og.sequence[1].cx, 1.0);
  EXPECT_DOUBLE_EQ(og.sequence[1].size, 25.0);
}

}  // namespace
}  // namespace strg::synth
