#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "cluster/em.h"
#include "distance/eged.h"
#include "synth/generator.h"
#include "util/thread_pool.h"

namespace strg {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.NumThreads(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](size_t) { ++calls; });
  pool.ParallelFor(7, 3, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(0, 100,
                                [&](size_t i) {
                                  if (i == 50) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> count{0};
  pool.ParallelFor(0, 10, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<long> sum{0};
    pool.ParallelFor(0, 100, [&](size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPool, ParallelEmMatchesSerialEm) {
  synth::SynthParams sp;
  sp.items_per_cluster = 4;
  sp.noise_pct = 8.0;
  auto seqs = synth::GenerateSyntheticOgs(sp).Sequences(
      synth::SynthScaling());
  dist::EgedDistance eged;

  cluster::ClusterParams serial;
  serial.max_iterations = 6;
  cluster::Clustering a = cluster::EmCluster(seqs, 8, eged, serial);

  ThreadPool pool(4);
  cluster::ClusterParams parallel = serial;
  parallel.pool = &pool;
  cluster::Clustering b = cluster::EmCluster(seqs, 8, eged, parallel);

  // Same seeds, same deterministic math: identical results.
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.log_likelihood, b.log_likelihood);
}

}  // namespace
}  // namespace strg
