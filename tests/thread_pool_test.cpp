// ctest-labels: unit
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "cluster/em.h"
#include "distance/eged.h"
#include "synth/generator.h"
#include "util/thread_pool.h"

namespace strg {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.NumThreads(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](size_t) { ++calls; });
  pool.ParallelFor(7, 3, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(0, 100,
                                [&](size_t i) {
                                  if (i == 50) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> count{0};
  pool.ParallelFor(0, 10, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<long> sum{0};
    pool.ParallelFor(0, 100, [&](size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPool, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  std::future<int> f = pool.Submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
  std::future<std::string> g =
      pool.Submit([] { return std::string("hello"); });
  EXPECT_EQ(g.get(), "hello");
}

TEST(ThreadPool, SubmitVoidTaskCompletes) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::future<void> f = pool.Submit([&] { ran.fetch_add(1); });
  f.get();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<int> f = pool.Submit(
      []() -> int { throw std::runtime_error("task boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives a throwing task.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ManyConcurrentSubmitsAllComplete) {
  ThreadPool pool(4);
  std::vector<std::future<size_t>> futures;
  futures.reserve(200);
  for (size_t i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPool, SubmittedTasksWaitableWithDeadline) {
  ThreadPool pool(1);
  // A queued task behind a slow one: wait_for with a generous deadline must
  // succeed; the QueryEngine relies on this instead of busy-waiting.
  std::future<void> slow = pool.Submit(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); });
  std::future<int> queued = pool.Submit([] { return 5; });
  ASSERT_EQ(queued.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_EQ(queued.get(), 5);
  slow.get();
}

TEST(ThreadPool, SubmitInterleavesWithParallelFor) {
  ThreadPool pool(3);
  std::future<int> f = pool.Submit([] { return 11; });
  std::atomic<long> sum{0};
  pool.ParallelFor(0, 50,
                   [&](size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 1225);
  EXPECT_EQ(f.get(), 11);
}

TEST(ThreadPool, ParallelEmMatchesSerialEm) {
  synth::SynthParams sp;
  sp.items_per_cluster = 4;
  sp.noise_pct = 8.0;
  auto seqs = synth::GenerateSyntheticOgs(sp).Sequences(
      synth::SynthScaling());
  dist::EgedDistance eged;

  cluster::ClusterParams serial;
  serial.max_iterations = 6;
  cluster::Clustering a = cluster::EmCluster(seqs, 8, eged, serial);

  ThreadPool pool(4);
  cluster::ClusterParams parallel = serial;
  parallel.pool = &pool;
  cluster::Clustering b = cluster::EmCluster(seqs, 8, eged, parallel);

  // Same seeds, same deterministic math: identical results.
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.log_likelihood, b.log_likelihood);
}

}  // namespace
}  // namespace strg
