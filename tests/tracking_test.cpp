// ctest-labels: unit
#include <gtest/gtest.h>

#include <cmath>

#include "graph/rag.h"
#include "segment/segmenter.h"
#include "strg/strg.h"
#include "strg/tracking.h"
#include "video/renderer.h"
#include "video/scenes.h"

namespace strg::core {
namespace {

graph::NodeAttr MakeAttr(double size, double gray, double cx, double cy) {
  graph::NodeAttr a;
  a.size = size;
  a.color = {gray, gray, gray};
  a.cx = cx;
  a.cy = cy;
  return a;
}

/// Two nodes: a big "background" blob and a small moving blob.
graph::Rag TwoNodeFrame(double mover_x) {
  graph::Rag g;
  int bg = g.AddNode(MakeAttr(500, 100, 40, 30));
  int obj = g.AddNode(MakeAttr(30, 200, mover_x, 10));
  g.AddEdge(bg, obj);
  return g;
}

TEST(Tracking, LinksCorrespondingNodes) {
  TrackingParams params;
  auto edges = BuildTemporalEdges(TwoNodeFrame(10), TwoNodeFrame(13), params);
  // Both nodes should be tracked (background stays, object moves 3px).
  ASSERT_EQ(edges.size(), 2u);
  for (const TemporalEdge& e : edges) {
    EXPECT_EQ(e.from_node, e.to_node);  // same construction order
  }
}

TEST(Tracking, TemporalAttrCarriesVelocityAndDirection) {
  TrackingParams params;
  auto edges = BuildTemporalEdges(TwoNodeFrame(10), TwoNodeFrame(13), params);
  bool found_mover = false;
  for (const TemporalEdge& e : edges) {
    if (e.from_node == 1) {
      found_mover = true;
      EXPECT_NEAR(e.attr.velocity, 3.0, 1e-9);
      EXPECT_NEAR(e.attr.direction, 0.0, 1e-9);  // moving in +x
    } else {
      EXPECT_NEAR(e.attr.velocity, 0.0, 1e-9);
    }
  }
  EXPECT_TRUE(found_mover);
}

TEST(Tracking, GateBlocksTeleportingNodes) {
  TrackingParams params;
  params.gate_distance = 10.0;
  // The background's star lost its only matching neighbor (the mover
  // teleported), leaving SimGraph at exactly 0.5; relax T_sim so this test
  // isolates the gating behaviour.
  params.t_sim = 0.4;
  auto edges = BuildTemporalEdges(TwoNodeFrame(10), TwoNodeFrame(50), params);
  // The mover jumped 40px — beyond the gate; only the background links.
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from_node, 0);
}

TEST(Tracking, IncompatibleNodeNotLinked) {
  graph::Rag a = TwoNodeFrame(10);
  graph::Rag b = TwoNodeFrame(10);
  b.node(1).color = {0, 0, 0};  // mover changes color entirely
  b.node(1).size = 500;         // and size
  TrackingParams params;
  auto edges = BuildTemporalEdges(a, b, params);
  for (const TemporalEdge& e : edges) {
    EXPECT_NE(e.from_node, 1);
  }
}

TEST(Tracking, EndToEndObjectTrackedThroughRenderedScene) {
  // Render a small scene with one moving person and verify the pipeline
  // produces an unbroken chain of temporal edges for its regions.
  video::SceneParams sp;
  sp.num_objects = 1;
  sp.object_lifetime = 10;
  sp.noise_stddev = 0.0;
  video::SceneSpec scene = video::MakeLabScene(sp);

  segment::SegmenterParams seg_params;
  seg_params.use_mean_shift = false;

  Strg strg;
  for (int t = 0; t < 10; ++t) {
    strg.AppendFrame(
        graph::BuildRag(segment::SegmentFrame(video::RenderFrame(scene, t),
                                              seg_params)));
  }
  ASSERT_EQ(strg.NumFrames(), 10u);
  // Every consecutive pair must produce temporal edges, and most nodes
  // should be tracked (background + person parts).
  for (size_t t = 0; t + 1 < 10; ++t) {
    EXPECT_GE(strg.TemporalEdges(t).size(), 3u) << "frame " << t;
  }
}

TEST(Strg, SizeAccountingGrowsWithFrames) {
  Strg strg;
  strg.AppendFrame(TwoNodeFrame(10));
  size_t s1 = strg.SizeBytes();
  strg.AppendFrame(TwoNodeFrame(12));
  size_t s2 = strg.SizeBytes();
  EXPECT_GT(s2, s1);
  EXPECT_EQ(strg.TotalNodes(), 4u);
  EXPECT_GT(strg.TotalTemporalEdges(), 0u);
}

TEST(Strg, NoTemporalEdgesForSingleFrame) {
  Strg strg;
  strg.AppendFrame(TwoNodeFrame(10));
  EXPECT_EQ(strg.NumFrames(), 1u);
  EXPECT_EQ(strg.TotalTemporalEdges(), 0u);
}

}  // namespace
}  // namespace strg::core
