// ctest-labels: unit
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "util/hungarian.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

namespace strg {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformRealStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, GaussianMeanRoughlyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(3);
  auto idx = rng.SampleIndices(50, 20);
  ASSERT_EQ(idx.size(), 20u);
  std::set<size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (size_t i : idx) EXPECT_LT(i, 50u);
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(3);
  auto idx = rng.SampleIndices(5, 5);
  std::set<size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(Rng, SampleIndicesThrowsWhenKTooLarge) {
  Rng rng(3);
  EXPECT_THROW(rng.SampleIndices(3, 4), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Stats, MeanAndStdDev) {
  std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);
}

TEST(Stats, EmptyInputsAreZero) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(StdDev({}), 0.0);
  EXPECT_EQ(Median({}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
}

TEST(Stats, PrecisionRecall) {
  auto pr = ComputePrecisionRecall(8, 10, 16);
  EXPECT_DOUBLE_EQ(pr.precision, 0.8);
  EXPECT_DOUBLE_EQ(pr.recall, 0.5);
}

TEST(Stats, PrecisionRecallZeroDenominators) {
  auto pr = ComputePrecisionRecall(0, 0, 0);
  EXPECT_EQ(pr.precision, 0.0);
  EXPECT_EQ(pr.recall, 0.0);
}

TEST(Table, PrintsAlignedRows) {
  Table t({"a", "long_header"});
  t.AddRow({"1", "2"});
  t.AddNumericRow({3.14159, 2.71828}, 2);
  std::ostringstream ss;
  t.Print(ss);
  std::string out = ss.str();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(Table, RejectsRaggedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::invalid_argument);
}

TEST(Table, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(2048), "2.0KB");
  EXPECT_EQ(FormatBytes(5 * 1024 * 1024), "5.0MB");
}

TEST(Table, FormatDuration) {
  EXPECT_EQ(FormatDuration(62), "1m 2s");
  EXPECT_EQ(FormatDuration(3723), "1h 2m 3s");
  EXPECT_EQ(FormatDuration(9), "9s");
}

TEST(Hungarian, SolvesSquareAssignment) {
  // Optimal: 0->1, 1->0, 2->2 (cost 1+2+2 = 5).
  std::vector<std::vector<double>> cost{
      {4, 1, 3},
      {2, 0, 5},
      {3, 2, 2},
  };
  auto match = SolveAssignment(cost);
  double total = 0;
  std::set<int> cols;
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_GE(match[i], 0);
    cols.insert(match[i]);
    total += cost[i][static_cast<size_t>(match[i])];
  }
  EXPECT_EQ(cols.size(), 3u);
  EXPECT_DOUBLE_EQ(total, 5.0);
}

TEST(Hungarian, RectangularMoreColumns) {
  std::vector<std::vector<double>> cost{
      {10, 1, 10, 10},
      {10, 10, 1, 10},
  };
  auto match = SolveAssignment(cost);
  EXPECT_EQ(match[0], 1);
  EXPECT_EQ(match[1], 2);
}

TEST(Hungarian, RectangularMoreRowsLeavesUnmatched) {
  std::vector<std::vector<double>> cost{
      {1.0},
      {0.5},
      {2.0},
  };
  auto match = SolveAssignment(cost);
  int matched = 0;
  for (int m : match) {
    if (m >= 0) ++matched;
  }
  EXPECT_EQ(matched, 1);
  EXPECT_EQ(match[1], 0);  // cheapest row wins the single column
}

TEST(Hungarian, IdentityOnDiagonalZeros) {
  size_t n = 6;
  std::vector<std::vector<double>> cost(n, std::vector<double>(n, 1.0));
  for (size_t i = 0; i < n; ++i) cost[i][i] = 0.0;
  auto match = SolveAssignment(cost);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(match[i], static_cast<int>(i));
}

TEST(Hungarian, RejectsRaggedMatrix) {
  std::vector<std::vector<double>> cost{{1, 2}, {3}};
  EXPECT_THROW(SolveAssignment(cost), std::invalid_argument);
}

TEST(Hungarian, EmptyMatrix) {
  EXPECT_TRUE(SolveAssignment({}).empty());
}

}  // namespace
}  // namespace strg
