// ctest-labels: unit
#include <gtest/gtest.h>

#include "core/video_database.h"
#include "video/scenes.h"

namespace strg::api {
namespace {

PipelineParams FastPipeline() {
  PipelineParams p;
  p.segmenter.use_mean_shift = false;
  return p;
}

SegmentResult ProcessLab(int num_objects, uint64_t seed) {
  video::SceneParams sp;
  sp.num_objects = num_objects;
  sp.object_lifetime = 16;
  sp.spawn_gap = 20;
  sp.noise_stddev = 0.0;
  sp.seed = seed;
  return ProcessScene(video::MakeLabScene(sp), FastPipeline());
}

index::StrgIndexParams SmallIndex() {
  index::StrgIndexParams p;
  p.num_clusters = 2;
  p.cluster_params.max_iterations = 6;
  return p;
}

TEST(VideoDatabase, AddVideoRegistersOgs) {
  VideoDatabase db(SmallIndex());
  SegmentResult lab = ProcessLab(3, 7);
  int seg = db.AddVideo("lab1", lab);
  EXPECT_EQ(seg, 0);
  EXPECT_EQ(db.NumVideos(), 1u);
  EXPECT_EQ(db.NumObjectGraphs(), lab.decomposition.object_graphs.size());
  EXPECT_GT(db.IndexSizeBytes(), 0u);
}

TEST(VideoDatabase, FindSimilarReturnsOwnOg) {
  VideoDatabase db(SmallIndex());
  SegmentResult lab = ProcessLab(3, 7);
  db.AddVideo("lab1", lab);
  const core::Og& probe = lab.decomposition.object_graphs[1];
  auto hits = db.FindSimilar(probe, 1, lab.Scaling());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].video, "lab1");
  EXPECT_NEAR(hits[0].distance, 0.0, 1e-9);
  EXPECT_EQ(hits[0].start_frame, probe.start_frame);
  EXPECT_EQ(hits[0].length, probe.Length());
}

TEST(VideoDatabase, HitsResolveToCorrectVideos) {
  VideoDatabase db(SmallIndex());
  SegmentResult lab1 = ProcessLab(2, 7);
  SegmentResult lab2 = ProcessLab(2, 99);
  db.AddVideo("lab1", lab1);
  db.AddVideo("lab2", lab2);
  EXPECT_EQ(db.NumVideos(), 2u);

  const core::Og& probe = lab2.decomposition.object_graphs[0];
  auto hits = db.FindSimilar(probe, 3, lab2.Scaling());
  ASSERT_GE(hits.size(), 1u);
  EXPECT_EQ(hits[0].video, "lab2");
  EXPECT_NEAR(hits[0].distance, 0.0, 1e-9);
}

TEST(VideoDatabase, AddObjectGraphExtendsSegment) {
  VideoDatabase db(SmallIndex());
  SegmentResult lab = ProcessLab(2, 7);
  int seg = db.AddVideo("lab1", lab);
  size_t before = db.NumObjectGraphs();

  core::Og extra = lab.decomposition.object_graphs[0];
  extra.start_frame = 500;
  db.AddObjectGraph(seg, "lab1", extra, lab.Scaling());
  EXPECT_EQ(db.NumObjectGraphs(), before + 1);

  auto hits = db.FindSimilar(extra, 2, lab.Scaling());
  ASSERT_GE(hits.size(), 2u);
  // Both the original OG and the duplicate should surface at distance ~0.
  EXPECT_NEAR(hits[0].distance, 0.0, 1e-9);
  EXPECT_NEAR(hits[1].distance, 0.0, 1e-9);
}

TEST(VideoDatabase, DistanceComputationsAccumulate) {
  VideoDatabase db(SmallIndex());
  SegmentResult lab = ProcessLab(3, 7);
  db.AddVideo("lab1", lab);
  size_t after_build = db.DistanceComputations();
  db.FindSimilar(lab.decomposition.object_graphs[0], 2, lab.Scaling());
  EXPECT_GT(db.DistanceComputations(), after_build);
}

}  // namespace
}  // namespace strg::api
