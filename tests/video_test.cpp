// ctest-labels: unit
#include <gtest/gtest.h>

#include "video/frame.h"
#include "video/motion.h"
#include "video/renderer.h"
#include "video/scenes.h"

namespace strg::video {
namespace {

TEST(Color, DistanceAndLerp) {
  Rgb a{0, 0, 0}, b{255, 255, 255};
  EXPECT_NEAR(ColorDistance(a, b), 441.67, 0.01);
  EXPECT_EQ(ColorDistance(a, a), 0.0);
  Rgb mid = Lerp(a, b, 0.5);
  EXPECT_NEAR(mid.r, 128, 1);
  EXPECT_NEAR(mid.g, 128, 1);
}

TEST(Color, ClampByteSaturates) {
  EXPECT_EQ(ClampByte(-5.0), 0);
  EXPECT_EQ(ClampByte(300.0), 255);
  EXPECT_EQ(ClampByte(99.6), 100);
}

TEST(Frame, FillAndAccess) {
  Frame f(8, 4, Rgb{1, 2, 3});
  EXPECT_EQ(f.width(), 8);
  EXPECT_EQ(f.height(), 4);
  EXPECT_EQ(f.size(), 32u);
  EXPECT_EQ(f.At(7, 3), (Rgb{1, 2, 3}));
  f.At(0, 0) = Rgb{9, 9, 9};
  EXPECT_EQ(f.At(0, 0).r, 9);
  EXPECT_TRUE(f.Contains(0, 0));
  EXPECT_FALSE(f.Contains(8, 0));
  EXPECT_FALSE(f.Contains(-1, 0));
}

TEST(Frame, PpmRoundTripHeader) {
  Frame f(2, 2, Rgb{10, 20, 30});
  std::string ppm = f.ToPpm();
  EXPECT_EQ(ppm.rfind("P3\n2 2\n255\n", 0), 0u);
  EXPECT_NE(ppm.find("10 20 30"), std::string::npos);
}

TEST(Path, LineInterpolatesAtConstantSpeed) {
  Path p = Path::Line({0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(p.At(0.0).x, 0.0);
  EXPECT_DOUBLE_EQ(p.At(0.5).x, 5.0);
  EXPECT_DOUBLE_EQ(p.At(1.0).x, 10.0);
  EXPECT_DOUBLE_EQ(p.Length(), 10.0);
}

TEST(Path, ClampsOutOfRangeTime) {
  Path p = Path::Line({0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(p.At(-1.0).x, 0.0);
  EXPECT_DOUBLE_EQ(p.At(2.0).x, 10.0);
}

TEST(Path, UTurnPassesThroughTurnPoint) {
  // Arc length: 10 up + 10 down; t=0.5 is the turn point.
  Path p = Path::UTurn({0, 0}, {0, 10}, {0, 0});
  EXPECT_DOUBLE_EQ(p.At(0.5).y, 10.0);
  EXPECT_DOUBLE_EQ(p.At(0.25).y, 5.0);
  EXPECT_DOUBLE_EQ(p.At(0.75).y, 5.0);
}

TEST(Path, SinglePointPathIsConstant) {
  Path p({{3, 4}});
  EXPECT_DOUBLE_EQ(p.At(0.7).x, 3.0);
  EXPECT_DOUBLE_EQ(p.Length(), 0.0);
}

TEST(Path, EmptyThrows) {
  EXPECT_THROW(Path(std::vector<Point>{}), std::invalid_argument);
}

TEST(Renderer, Deterministic) {
  SceneParams params;
  params.num_objects = 3;
  params.noise_stddev = 3.0;
  SceneSpec scene = MakeLabScene(params);
  Frame a = RenderFrame(scene, 5);
  Frame b = RenderFrame(scene, 5);
  EXPECT_EQ(a.pixels(), b.pixels());
}

TEST(Renderer, NoiseDiffersAcrossFrames) {
  SceneParams params;
  params.num_objects = 0;
  params.noise_stddev = 3.0;
  SceneSpec scene = MakeLabScene(params);
  scene.num_frames = 2;
  Frame a = RenderFrame(scene, 0);
  Frame b = RenderFrame(scene, 1);
  EXPECT_NE(a.pixels(), b.pixels());
}

TEST(Renderer, ObjectAppearsOnlyWhenActive) {
  SceneSpec scene;
  scene.width = 40;
  scene.height = 30;
  scene.num_frames = 20;
  scene.background.tile_size = 0;
  scene.background.base = {0, 0, 0};
  ObjectSpec obj;
  obj.id = 0;
  obj.start_frame = 5;
  obj.end_frame = 10;
  obj.parts = {{PartShape::kRectangle, {0, 0}, 6, 6, Rgb{255, 0, 0}}};
  obj.path = Path::Line({20, 15}, {20, 15});
  scene.objects.push_back(obj);

  auto has_red = [&](int t) {
    Frame f = RenderFrame(scene, t);
    for (const Rgb& p : f.pixels()) {
      if (p.r > 200) return true;
    }
    return false;
  };
  EXPECT_FALSE(has_red(4));
  EXPECT_TRUE(has_red(5));
  EXPECT_TRUE(has_red(9));
  EXPECT_FALSE(has_red(10));
  EXPECT_EQ(CountActiveObjects(scene, 7), 1);
  EXPECT_EQ(CountActiveObjects(scene, 2), 0);
}

TEST(Renderer, ObjectMovesAlongPath) {
  SceneSpec scene;
  scene.width = 60;
  scene.height = 20;
  scene.num_frames = 11;
  scene.background.tile_size = 0;
  scene.background.base = {0, 0, 0};
  ObjectSpec obj;
  obj.start_frame = 0;
  obj.end_frame = 11;
  obj.parts = {{PartShape::kRectangle, {0, 0}, 4, 4, Rgb{0, 255, 0}}};
  obj.path = Path::Line({5, 10}, {55, 10});
  scene.objects.push_back(obj);

  auto center_x = [&](int t) {
    Frame f = RenderFrame(scene, t);
    double sx = 0;
    int n = 0;
    for (int y = 0; y < f.height(); ++y) {
      for (int x = 0; x < f.width(); ++x) {
        if (f.At(x, y).g > 200) {
          sx += x;
          ++n;
        }
      }
    }
    return n > 0 ? sx / n : -1.0;
  };
  double x0 = center_x(0), x5 = center_x(5), x10 = center_x(10);
  EXPECT_LT(x0, x5);
  EXPECT_LT(x5, x10);
  EXPECT_NEAR(x5, 30.0, 2.0);
}

TEST(Scenes, LabSceneShapesMatchParams) {
  SceneParams params;
  params.num_objects = 10;
  SceneSpec scene = MakeLabScene(params);
  EXPECT_EQ(scene.objects.size(), 10u);
  EXPECT_EQ(scene.num_frames, 9 * params.spawn_gap + params.object_lifetime);
  // People are three-part objects.
  for (const ObjectSpec& obj : scene.objects) {
    EXPECT_EQ(obj.parts.size(), 3u);
  }
}

TEST(Scenes, TrafficVehiclesCrossHorizontally) {
  SceneParams params;
  params.num_objects = 8;
  SceneSpec scene = MakeTrafficScene(params);
  for (const ObjectSpec& obj : scene.objects) {
    Point a = obj.path.At(0.0), b = obj.path.At(1.0);
    EXPECT_NEAR(a.y, b.y, 0.01);             // lanes are horizontal
    EXPECT_GT(std::abs(b.x - a.x), scene.width * 0.9);
  }
}

}  // namespace
}  // namespace strg::video
