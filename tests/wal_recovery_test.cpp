// ctest-labels: recovery
// Crash-recovery fault injection for the durability layer (storage::Wal* +
// server::DurableQueryEngine).
//
// The invariant under test, from every crash point in the matrix: any
// generation whose AddVideo/AddObjectGraph call *returned* (was acked) is
// present after reopen, and the recovered database answers Query
// identically to the pre-crash snapshot. Corrupt or torn WAL tails are
// detected by checksum/framing and truncated — never replayed.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "server/durable_engine.h"
#include "storage/wal.h"
#include "synth/generator.h"

namespace strg::server {
namespace {

namespace fs = std::filesystem;

// ---- Fixtures -----------------------------------------------------------

struct Fixture {
  api::SegmentResult segment;           ///< base OGs, ingested via AddVideo
  std::vector<core::Og> stream;         ///< OGs for AddObjectGraph calls
  std::vector<dist::Sequence> queries;  ///< probe sequences
};

Fixture MakeFixture(size_t base, uint64_t seed) {
  synth::SynthParams sp;
  sp.items_per_cluster = 1;
  sp.seed = seed;
  synth::SynthDataset ds = synth::GenerateSyntheticOgs(sp);

  Fixture fx;
  fx.segment.frame_width = 100;
  fx.segment.frame_height = 100;
  size_t frames = 0;
  for (size_t i = 0; i < ds.ogs.size(); ++i) {
    const core::Og& og = ds.ogs[i];
    frames = std::max(frames,
                      static_cast<size_t>(og.start_frame) + og.Length());
    if (i < base) {
      fx.segment.decomposition.object_graphs.push_back(og);
    } else {
      fx.stream.push_back(og);
    }
  }
  fx.segment.num_frames = frames;
  fx.queries = ds.Sequences(synth::SynthScaling());
  return fx;
}

index::StrgIndexParams FastIndex() {
  index::StrgIndexParams p;
  p.num_clusters = 4;
  p.cluster_params.max_iterations = 4;
  return p;
}

/// Fresh, empty durability directory per test.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/strg_wal_" + name;
  fs::remove_all(dir);
  return dir;
}

DurableEngineOptions SmallEngine(
    storage::WalSyncPolicy policy = storage::WalSyncPolicy::kEveryRecord,
    size_t compact_every = 0) {
  DurableEngineOptions o;
  o.wal.sync_policy = policy;
  o.compact_every = compact_every;
  o.engine.num_threads = 2;
  return o;
}

std::unique_ptr<DurableQueryEngine> MustOpen(
    const std::string& dir, const DurableEngineOptions& opts) {
  auto engine = DurableQueryEngine::Open(dir, FastIndex(), opts);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

/// Snapshot of the answers a database gives to a fixed probe set —
/// compared field-by-field across a crash/reopen boundary.
std::vector<api::VideoDatabase::QueryHit> Answers(
    const DurableQueryEngine& e, const Fixture& fx) {
  const api::VideoDatabase& db = e.engine().snapshot()->db;
  std::vector<api::VideoDatabase::QueryHit> out;
  for (size_t i = 0; i < 3 && i < fx.queries.size(); ++i) {
    auto hits =
        db.Query(api::QuerySpec::Similar(fx.queries[i], 100000));
    out.insert(out.end(), hits.begin(), hits.end());
  }
  auto active = db.Query(api::QuerySpec::Active("lab", 0, 1 << 30));
  out.insert(out.end(), active.begin(), active.end());
  return out;
}

void ExpectSameAnswers(const std::vector<api::VideoDatabase::QueryHit>& a,
                       const std::vector<api::VideoDatabase::QueryHit>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].og_id, b[i].og_id) << "hit " << i;
    EXPECT_EQ(a[i].video, b[i].video) << "hit " << i;
    EXPECT_EQ(a[i].start_frame, b[i].start_frame) << "hit " << i;
    EXPECT_DOUBLE_EQ(a[i].distance, b[i].distance) << "hit " << i;
  }
}

// ---- CRC32C + raw log framing -------------------------------------------

TEST(Crc32c, KnownVectorAndChaining) {
  // RFC 3720 check value for "123456789".
  const char kCheck[] = "123456789";
  EXPECT_EQ(storage::Crc32c(kCheck, 9), 0xE3069283u);
  EXPECT_EQ(storage::Crc32c(kCheck, 0), 0u);
  // Chained partial computation must equal the one-shot CRC.
  uint32_t part = storage::Crc32c(kCheck, 4);
  EXPECT_EQ(storage::Crc32c(kCheck + 4, 5, part),
            storage::Crc32c(kCheck, 9));
}

TEST(Wal, AppendRecoverRoundTrip) {
  std::string dir = FreshDir("roundtrip");
  fs::create_directories(dir);
  const std::string log = dir + "/wal.log";

  {
    auto w = storage::WalWriter::Open(log);
    ASSERT_TRUE(w.ok());
    EXPECT_TRUE(w->Append("alpha").ok());
    EXPECT_TRUE(w->Append(std::string(1000, 'x')).ok());
    EXPECT_TRUE(w->Append("").ok());  // empty payloads are legal
    EXPECT_EQ(w->records_appended(), 3u);
    EXPECT_EQ(w->syncs(), 3u);  // kEveryRecord default
  }

  auto rec = storage::RecoverWal(log);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->records.size(), 3u);
  EXPECT_EQ(rec->records[0], "alpha");
  EXPECT_EQ(rec->records[1], std::string(1000, 'x'));
  EXPECT_EQ(rec->records[2], "");
  EXPECT_FALSE(rec->tail_truncated);
  EXPECT_EQ(rec->valid_bytes, fs::file_size(log));
}

TEST(Wal, TornTailIsTruncatedOnOpen) {
  std::string dir = FreshDir("torn");
  fs::create_directories(dir);
  const std::string log = dir + "/wal.log";
  {
    auto w = storage::WalWriter::Open(log);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Append("first").ok());
    ASSERT_TRUE(w->Append("second").ok());
  }
  const uint64_t clean_size = fs::file_size(log);

  // Simulate a crash mid-append: a header promising more payload than the
  // file holds (the kill-after-append-before-sync crash point).
  {
    std::ofstream out(log, std::ios::binary | std::ios::app);
    const char torn_header[8] = {100, 0, 0, 0, 0, 0, 0, 0};
    out.write(torn_header, sizeof(torn_header));
    out.write("only-a-few-bytes", 16);
  }
  ASSERT_GT(fs::file_size(log), clean_size);

  auto rec = storage::RecoverWal(log);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->records.size(), 2u);
  EXPECT_TRUE(rec->tail_truncated);
  EXPECT_EQ(rec->valid_bytes, clean_size);
  // The file itself was healed: a second scan is clean.
  EXPECT_EQ(fs::file_size(log), clean_size);
  auto again = storage::RecoverWal(log);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->tail_truncated);
  EXPECT_EQ(again->records.size(), 2u);
}

TEST(Wal, BitFlipIsRejectedByChecksum) {
  std::string dir = FreshDir("bitflip");
  fs::create_directories(dir);
  const std::string log = dir + "/wal.log";
  uint64_t first_record_end = 0;
  {
    auto w = storage::WalWriter::Open(log);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Append("record-zero").ok());
    first_record_end = w->bytes_appended();
    ASSERT_TRUE(w->Append("record-one").ok());
    ASSERT_TRUE(w->Append("record-two").ok());
  }

  // Flip one payload bit inside the *middle* record.
  {
    std::fstream f(log, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(first_record_end) + 8 + 2);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(first_record_end) + 8 + 2);
    f.write(&byte, 1);
  }

  // The checksum rejects the flipped record; the clean prefix survives and
  // the suffix after the damage is dropped with it (prefix semantics —
  // record N+1 must never be replayed when record N is gone).
  auto rec = storage::RecoverWal(log);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->records.size(), 1u);
  EXPECT_EQ(rec->records[0], "record-zero");
  EXPECT_TRUE(rec->tail_truncated);
  EXPECT_EQ(fs::file_size(log), first_record_end);
}

// ---- Engine-level crash matrix ------------------------------------------

TEST(DurableEngine, AckedGenerationsSurviveReopen) {
  Fixture fx = MakeFixture(8, 7);
  std::string dir = FreshDir("acked");

  uint64_t acked_gen = 0;
  std::vector<api::VideoDatabase::QueryHit> before;
  {
    auto e = MustOpen(dir, SmallEngine());
    int segment_id = -1;
    auto gen = e->AddVideo("lab", fx.segment, &segment_id);
    ASSERT_TRUE(gen.ok());
    ASSERT_EQ(segment_id, 0);
    for (size_t i = 0; i < 6; ++i) {
      auto g = e->AddObjectGraph(segment_id, "lab", fx.stream[i],
                                 synth::SynthScaling());
      ASSERT_TRUE(g.ok()) << g.status().ToString();
      acked_gen = g.value();
    }
    EXPECT_EQ(acked_gen, 7u);
    before = Answers(*e, fx);
  }  // destructor: the process "dies" with no further writes

  auto e = MustOpen(dir, SmallEngine());
  EXPECT_EQ(e->Generation(), acked_gen);
  EXPECT_EQ(e->recovery().replayed_records, 7u);
  EXPECT_FALSE(e->recovery().tail_truncated);
  EXPECT_EQ(e->engine().snapshot()->db.NumObjectGraphs(), 8u + 6u);
  ExpectSameAnswers(before, Answers(*e, fx));

  // The recovered engine keeps serving: the unified Query path answers
  // through cache + admission as before the crash.
  QueryResult qr = e->Query(api::QuerySpec::Similar(fx.queries[0], 5));
  EXPECT_EQ(qr.status, StatusCode::kOk);
  EXPECT_EQ(qr.hits.size(), 5u);
}

TEST(DurableEngine, CrashAfterAppendBeforePublishIsSafeToReplay) {
  Fixture fx = MakeFixture(8, 9);
  std::string dir = FreshDir("afterappend");

  std::vector<api::VideoDatabase::QueryHit> before;
  {
    auto e = MustOpen(dir, SmallEngine());
    int segment_id = -1;
    ASSERT_TRUE(e->AddVideo("lab", fx.segment, &segment_id).ok());
    ASSERT_TRUE(e->AddObjectGraph(segment_id, "lab", fx.stream[0],
                                  synth::SynthScaling())
                    .ok());
    // Crash point: the record reaches the log but the call never returns
    // (not acked, generation never published).
    e->set_fail_point(FailPoint::kAfterWalAppend);
    auto g = e->AddObjectGraph(segment_id, "lab", fx.stream[1],
                               synth::SynthScaling());
    EXPECT_FALSE(g.ok());
    EXPECT_EQ(e->Generation(), 2u);  // unchanged: never published
  }

  // Replaying the orphan record is allowed (it was durable, just unacked):
  // the acked prefix must be present, and the orphan shows up as one more
  // OG — a write the client never heard about, which durability permits.
  auto e = MustOpen(dir, SmallEngine());
  EXPECT_EQ(e->recovery().replayed_records, 3u);
  EXPECT_EQ(e->Generation(), 3u);
  EXPECT_EQ(e->engine().snapshot()->db.NumObjectGraphs(), 8u + 2u);
}

TEST(DurableEngine, CrashMidCompactionOrphanTmpIsIgnored) {
  Fixture fx = MakeFixture(8, 11);
  std::string dir = FreshDir("orphantmp");

  std::vector<api::VideoDatabase::QueryHit> before;
  {
    auto e = MustOpen(dir, SmallEngine());
    int segment_id = -1;
    ASSERT_TRUE(e->AddVideo("lab", fx.segment, &segment_id).ok());
    ASSERT_TRUE(e->AddObjectGraph(segment_id, "lab", fx.stream[0],
                                  synth::SynthScaling())
                    .ok());
    before = Answers(*e, fx);
  }
  // Crash mid-compaction: a half-written tmp snapshot is on disk.
  {
    std::ofstream tmp(DurableQueryEngine::SnapshotTmpPath(dir),
                      std::ios::binary);
    tmp << "half-written garbage that must never be loaded";
  }

  auto e = MustOpen(dir, SmallEngine());
  EXPECT_TRUE(e->recovery().removed_orphan_tmp);
  EXPECT_FALSE(fs::exists(DurableQueryEngine::SnapshotTmpPath(dir)));
  EXPECT_EQ(e->Generation(), 2u);
  ExpectSameAnswers(before, Answers(*e, fx));
}

TEST(DurableEngine, CrashBetweenSnapshotRenameAndLogResetSkipsStaleRecords) {
  Fixture fx = MakeFixture(8, 13);
  std::string dir = FreshDir("stalelog");

  std::vector<api::VideoDatabase::QueryHit> before;
  uint64_t acked_gen = 0;
  {
    auto e = MustOpen(dir, SmallEngine());
    int segment_id = -1;
    ASSERT_TRUE(e->AddVideo("lab", fx.segment, &segment_id).ok());
    for (size_t i = 0; i < 3; ++i) {
      auto g = e->AddObjectGraph(segment_id, "lab", fx.stream[i],
                                 synth::SynthScaling());
      ASSERT_TRUE(g.ok());
      acked_gen = g.value();
    }
    before = Answers(*e, fx);
    // Crash point: snapshot published, log never reset — every log record
    // is now a stale duplicate of snapshot contents.
    e->set_fail_point(FailPoint::kAfterSnapshotRename);
    EXPECT_FALSE(e->Compact().ok());
  }
  ASSERT_TRUE(fs::exists(DurableQueryEngine::SnapshotPath(dir)));
  ASSERT_GT(fs::file_size(DurableQueryEngine::LogPath(dir)), 0u);

  auto e = MustOpen(dir, SmallEngine());
  // Every record was skipped as stale — nothing double-applied.
  EXPECT_EQ(e->recovery().stale_records, 4u);
  EXPECT_EQ(e->recovery().replayed_records, 0u);
  EXPECT_EQ(e->recovery().snapshot_segments, 1u);
  EXPECT_EQ(e->Generation(), acked_gen);
  EXPECT_EQ(e->engine().snapshot()->db.NumObjectGraphs(), 8u + 3u);
  ExpectSameAnswers(before, Answers(*e, fx));
}

TEST(DurableEngine, CompactionBoundsReplayAndPreservesAnswers) {
  Fixture fx = MakeFixture(8, 17);
  std::string dir = FreshDir("compact");

  std::vector<api::VideoDatabase::QueryHit> before;
  uint64_t acked_gen = 0;
  {
    // Compact every 4 records: 1 AddVideo + 10 AddObjectGraph = 11 ops,
    // so at least two compactions fire mid-stream.
    auto e = MustOpen(dir, SmallEngine(storage::WalSyncPolicy::kEveryRecord,
                                       /*compact_every=*/4));
    int segment_id = -1;
    ASSERT_TRUE(e->AddVideo("lab", fx.segment, &segment_id).ok());
    for (size_t i = 0; i < 10; ++i) {
      auto g = e->AddObjectGraph(segment_id, "lab", fx.stream[i],
                                 synth::SynthScaling());
      ASSERT_TRUE(g.ok()) << g.status().ToString();
      acked_gen = g.value();
    }
    EXPECT_GE(e->engine().metrics().wal_compactions.load(), 2u);
    before = Answers(*e, fx);
  }

  auto e = MustOpen(dir, SmallEngine(storage::WalSyncPolicy::kEveryRecord,
                                     /*compact_every=*/4));
  // Replay is bounded: most of the state came from the snapshot.
  EXPECT_EQ(e->recovery().snapshot_segments, 1u);
  EXPECT_GE(e->recovery().snapshot_ogs, 8u);
  EXPECT_LE(e->recovery().replayed_records, 4u);
  EXPECT_EQ(e->Generation(), acked_gen);
  EXPECT_EQ(e->engine().snapshot()->db.NumObjectGraphs(), 8u + 10u);
  ExpectSameAnswers(before, Answers(*e, fx));
}

TEST(DurableEngine, RelaxedSyncPoliciesStillRecoverAfterCleanShutdown) {
  Fixture fx = MakeFixture(8, 19);
  for (auto policy : {storage::WalSyncPolicy::kEveryN,
                      storage::WalSyncPolicy::kOnPublish}) {
    std::string dir = FreshDir(
        policy == storage::WalSyncPolicy::kEveryN ? "everyn" : "onpublish");
    uint64_t acked_gen = 0;
    {
      DurableEngineOptions opts = SmallEngine(policy);
      opts.wal.sync_every_n = 4;
      auto e = MustOpen(dir, opts);
      int segment_id = -1;
      ASSERT_TRUE(e->AddVideo("lab", fx.segment, &segment_id).ok());
      for (size_t i = 0; i < 5; ++i) {
        auto g = e->AddObjectGraph(segment_id, "lab", fx.stream[i],
                                   synth::SynthScaling());
        ASSERT_TRUE(g.ok());
        acked_gen = g.value();
      }
      if (policy == storage::WalSyncPolicy::kOnPublish) {
        // No automatic fsync at all until Sync()/Compact().
        EXPECT_EQ(e->engine().metrics().wal_syncs.load(), 0u);
        EXPECT_TRUE(e->Sync().ok());
        EXPECT_EQ(e->engine().metrics().wal_syncs.load(), 1u);
      } else {
        // Group commit: one fsync per sync_every_n records.
        EXPECT_LT(e->engine().metrics().wal_syncs.load(), 6u);
      }
    }
    auto e = MustOpen(dir, SmallEngine(policy));
    EXPECT_EQ(e->Generation(), acked_gen) << "policy "
                                          << static_cast<int>(policy);
    EXPECT_EQ(e->engine().snapshot()->db.NumObjectGraphs(), 8u + 5u);
  }
}

TEST(DurableEngine, CorruptSnapshotIsATypedError) {
  Fixture fx = MakeFixture(8, 23);
  std::string dir = FreshDir("badsnap");
  {
    auto e = MustOpen(dir, SmallEngine(storage::WalSyncPolicy::kEveryRecord,
                                       /*compact_every=*/1));
    ASSERT_TRUE(e->AddVideo("lab", fx.segment).ok());
    ASSERT_TRUE(fs::exists(DurableQueryEngine::SnapshotPath(dir)));
  }
  {
    std::ofstream snap(DurableQueryEngine::SnapshotPath(dir),
                       std::ios::binary | std::ios::trunc);
    snap << "not a snapshot";
  }
  auto e = DurableQueryEngine::Open(dir, FastIndex(), SmallEngine());
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), api::StatusCode::kCorruption);
}

TEST(DurableEngine, UnknownSegmentIsNotFoundAndNothingIsLogged) {
  Fixture fx = MakeFixture(8, 29);
  std::string dir = FreshDir("notfound");
  auto e = MustOpen(dir, SmallEngine());
  ASSERT_TRUE(e->AddVideo("lab", fx.segment).ok());
  const uint64_t appends = e->engine().metrics().wal_appends.load();

  auto g = e->AddObjectGraph(99, "lab", fx.stream[0], synth::SynthScaling());
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), api::StatusCode::kNotFound);
  EXPECT_EQ(e->engine().metrics().wal_appends.load(), appends);
}

TEST(DurableEngine, CrashAfterTmpSnapshotWriteServesOldSnapshotPlusLog) {
  Fixture fx = MakeFixture(8, 37);
  std::string dir = FreshDir("tmpcrash");

  std::vector<api::VideoDatabase::QueryHit> before;
  {
    auto e = MustOpen(dir, SmallEngine());
    int segment_id = -1;
    ASSERT_TRUE(e->AddVideo("lab", fx.segment, &segment_id).ok());
    ASSERT_TRUE(e->AddObjectGraph(segment_id, "lab", fx.stream[0],
                                  synth::SynthScaling())
                    .ok());
    before = Answers(*e, fx);
    // Crash point: the tmp snapshot was fully written and fsynced, but the
    // process died before the rename published it.
    e->set_fail_point(FailPoint::kAfterSnapshotTmpWrite);
    EXPECT_FALSE(e->Compact().ok());
  }
  // A real tmp file (a complete snapshot, not garbage) is on disk, the
  // published snapshot does not exist, and the log still covers everything.
  ASSERT_TRUE(fs::exists(DurableQueryEngine::SnapshotTmpPath(dir)));
  ASSERT_FALSE(fs::exists(DurableQueryEngine::SnapshotPath(dir)));
  ASSERT_GT(fs::file_size(DurableQueryEngine::LogPath(dir)), 0u);

  auto e = MustOpen(dir, SmallEngine());
  EXPECT_TRUE(e->recovery().removed_orphan_tmp);
  EXPECT_FALSE(fs::exists(DurableQueryEngine::SnapshotTmpPath(dir)));
  // The whole state came back from the log (there was no snapshot yet).
  EXPECT_EQ(e->recovery().replayed_records, 2u);
  EXPECT_EQ(e->Generation(), 2u);
  ExpectSameAnswers(before, Answers(*e, fx));
}

TEST(DurableEngine, RecoverySweepsEveryOrphanTmpFile) {
  Fixture fx = MakeFixture(8, 41);
  std::string dir = FreshDir("tmpsweep");
  {
    auto e = MustOpen(dir, SmallEngine());
    ASSERT_TRUE(e->AddVideo("lab", fx.segment).ok());
  }
  // Strew several orphaned temp files around: the flat snapshot tmp, the
  // paged snapshot tmp, and an arbitrary one — a crashed compaction of any
  // vintage. All must be swept, whatever mode the engine reopens in.
  for (const std::string& path :
       {DurableQueryEngine::SnapshotTmpPath(dir),
        DurableQueryEngine::PagedSnapshotTmpPath(dir),
        dir + "/stray-download.tmp"}) {
    std::ofstream tmp(path, std::ios::binary);
    tmp << "orphan";
  }

  auto e = MustOpen(dir, SmallEngine());
  EXPECT_TRUE(e->recovery().removed_orphan_tmp);
  EXPECT_FALSE(fs::exists(DurableQueryEngine::SnapshotTmpPath(dir)));
  EXPECT_FALSE(fs::exists(DurableQueryEngine::PagedSnapshotTmpPath(dir)));
  EXPECT_FALSE(fs::exists(dir + "/stray-download.tmp"));
  EXPECT_EQ(e->Generation(), 1u);
}

// ---- Paged mode (out-of-core storage engine) ----------------------------

DurableEngineOptions PagedEngine(size_t compact_every = 0) {
  DurableEngineOptions o = SmallEngine(storage::WalSyncPolicy::kEveryRecord,
                                       compact_every);
  o.storage.paged = true;
  o.storage.page_size = 256;        // small pages exercise overflow chains
  o.storage.cache_bytes = 16 * 256; // and a cache far below the dataset
  o.storage.cache_shards = 2;
  return o;
}

TEST(DurableEngine, PagedModeAnswersMatchInRamMode) {
  Fixture fx = MakeFixture(8, 43);
  std::string flat_dir = FreshDir("paged_eq_flat");
  std::string paged_dir = FreshDir("paged_eq_paged");

  auto flat = MustOpen(flat_dir, SmallEngine());
  auto paged = MustOpen(paged_dir, PagedEngine());
  for (auto* e : {flat.get(), paged.get()}) {
    int segment_id = -1;
    ASSERT_TRUE(e->AddVideo("lab", fx.segment, &segment_id).ok());
    for (size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(e->AddObjectGraph(segment_id, "lab", fx.stream[i],
                                    synth::SynthScaling())
                      .ok());
    }
  }
  // Identical answers through a leaf store that actually paged: the cache
  // saw traffic and the backing file outgrew the cache budget.
  ExpectSameAnswers(Answers(*flat, fx), Answers(*paged, fx));
  ASSERT_NE(paged->paged_store(), nullptr);
  storage::BufferCacheStats cs = paged->paged_store()->cache_stats();
  EXPECT_GT(cs.hits + cs.misses, 0u);
  EXPECT_GT(paged->paged_store()->file().num_pages() * 256,
            PagedEngine().storage.cache_bytes);
  EXPECT_EQ(flat->paged_store(), nullptr);
}

TEST(DurableEngine, PagedModeRecoversThroughCompactionAndReopen) {
  Fixture fx = MakeFixture(8, 47);
  std::string dir = FreshDir("paged_recover");

  std::vector<api::VideoDatabase::QueryHit> before;
  uint64_t acked_gen = 0;
  {
    auto e = MustOpen(dir, PagedEngine(/*compact_every=*/4));
    int segment_id = -1;
    ASSERT_TRUE(e->AddVideo("lab", fx.segment, &segment_id).ok());
    for (size_t i = 0; i < 6; ++i) {
      auto g = e->AddObjectGraph(segment_id, "lab", fx.stream[i],
                                 synth::SynthScaling());
      ASSERT_TRUE(g.ok()) << g.status().ToString();
      acked_gen = g.value();
    }
    EXPECT_GE(e->engine().metrics().wal_compactions.load(), 1u);
    before = Answers(*e, fx);
  }
  // Compaction published the snapshot as a page file, not a flat blob.
  ASSERT_TRUE(fs::exists(DurableQueryEngine::PagedSnapshotPath(dir)));
  ASSERT_FALSE(fs::exists(DurableQueryEngine::SnapshotPath(dir)));

  auto e = MustOpen(dir, PagedEngine(/*compact_every=*/4));
  EXPECT_EQ(e->recovery().snapshot_segments, 1u);
  EXPECT_GE(e->recovery().snapshot_ogs, 8u);
  EXPECT_EQ(e->Generation(), acked_gen);
  EXPECT_EQ(e->engine().snapshot()->db.NumObjectGraphs(), 8u + 6u);
  ExpectSameAnswers(before, Answers(*e, fx));
}

TEST(DurableEngine, PagedCrashAfterTmpSnapshotWriteIsCleanedUp) {
  Fixture fx = MakeFixture(8, 53);
  std::string dir = FreshDir("paged_tmpcrash");

  std::vector<api::VideoDatabase::QueryHit> before;
  {
    auto e = MustOpen(dir, PagedEngine());
    ASSERT_TRUE(e->AddVideo("lab", fx.segment).ok());
    before = Answers(*e, fx);
    e->set_fail_point(FailPoint::kAfterSnapshotTmpWrite);
    EXPECT_FALSE(e->Compact().ok());
  }
  ASSERT_TRUE(fs::exists(DurableQueryEngine::PagedSnapshotTmpPath(dir)));
  ASSERT_FALSE(fs::exists(DurableQueryEngine::PagedSnapshotPath(dir)));

  auto e = MustOpen(dir, PagedEngine());
  EXPECT_TRUE(e->recovery().removed_orphan_tmp);
  EXPECT_FALSE(fs::exists(DurableQueryEngine::PagedSnapshotTmpPath(dir)));
  EXPECT_EQ(e->Generation(), 1u);
  ExpectSameAnswers(before, Answers(*e, fx));
}

TEST(DurableEngine, MetricsJsonCarriesStorageBlock) {
  Fixture fx = MakeFixture(8, 59);
  std::string paged_dir = FreshDir("paged_metrics");
  std::string flat_dir = FreshDir("flat_metrics");

  auto paged = MustOpen(paged_dir, PagedEngine());
  ASSERT_TRUE(paged->AddVideo("lab", fx.segment).ok());
  paged->Query(api::QuerySpec::Similar(fx.queries[0], 3));
  std::string json = paged->MetricsJson();
  EXPECT_NE(json.find("\"storage\":{\"paged\":true"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"evictions\":"), std::string::npos);
  EXPECT_NE(json.find("\"pinned_pages\":"), std::string::npos);
  EXPECT_NE(json.find("\"resident_bytes\":"), std::string::npos);
  EXPECT_EQ(json.find("\"misses\":0,\"evictions\""), std::string::npos)
      << "paged engine never touched the cache: " << json;

  auto flat = MustOpen(flat_dir, SmallEngine());
  EXPECT_NE(flat->MetricsJson().find("\"storage\":{\"paged\":false"),
            std::string::npos);
}

TEST(DurableEngine, MetricsJsonCarriesWalAndStatusBreakdown) {
  Fixture fx = MakeFixture(8, 31);
  std::string dir = FreshDir("metrics");
  auto e = MustOpen(dir, SmallEngine());
  ASSERT_TRUE(e->AddVideo("lab", fx.segment).ok());
  e->Query(api::QuerySpec::Similar(fx.queries[0], 3));
  e->Query(api::QuerySpec::Similar(fx.queries[0], 3));  // cache hit

  std::string json = e->MetricsJson();
  EXPECT_NE(json.find("\"wal\":{\"appends\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"status_codes\":{\"OK\":2"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"hit_rate\":"), std::string::npos);
  EXPECT_NE(json.find("\"CORRUPTION\":0"), std::string::npos);
}

}  // namespace
}  // namespace strg::server
